"""BrunetNode: one P2P router.

Owns the UDP socket, connection table, linker, overlords and the greedy
router.  The IPOP layer sits on top via :attr:`ip_handler` (inbound
tunnelled packets) and :meth:`inspect_traffic` (outbound traffic scores for
the shortcut overlord).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.brunet.address import BrunetAddress, directed_distance, ring_distance
from repro.brunet.config import BrunetConfig, DEFAULT_CONFIG
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.linking import Linker
from repro.brunet.messages import (
    CloseMessage,
    CtmReply,
    CtmRequest,
    Forward,
    IpEncap,
    LinkError,
    LinkReply,
    LinkRequest,
    PingReply,
    PingRequest,
    RoutedPacket,
)
from repro.brunet.routing import next_hop
from repro.brunet.table import ConnectionTable
from repro.brunet.uri import Uri, UriSet
from repro.sim.engine import sweep_wheel
from repro import wire
from repro.obs.spans import TraceRef
from repro.phys.endpoints import Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.host import Host
    from repro.sim.engine import Simulator
    from repro.transport.base import Transport


class BrunetNode:
    """A Brunet P2P router bound to one datagram transport.

    ``host``/``port`` describe the classic sim-backed case (a
    :class:`~repro.transport.sim.SimTransport` is built lazily in
    :meth:`start`).  Passing ``transport`` instead injects any
    :class:`~repro.transport.base.Transport` — e.g. a bound
    :class:`~repro.transport.udp.UdpTransport` — and the identical node
    logic runs over it; ``sim`` may then be a
    :class:`~repro.transport.runtime.RealtimeKernel`.
    """

    def __init__(self, sim: "Simulator", host: Optional["Host"],
                 addr: BrunetAddress,
                 config: Optional[BrunetConfig] = None,
                 port: Optional[int] = None, name: str = "",
                 transport: Optional["Transport"] = None):
        self.sim = sim
        self.host = host
        self.addr = addr
        self.config = config or DEFAULT_CONFIG
        self.active = False
        self.transport = transport
        if transport is not None:
            ep = transport.local_endpoint
            self.name = name or f"bn.{ep.ip}:{ep.port}"
            self.port = ep.port
            self.uris: UriSet = UriSet(Uri.udp(ep.ip, ep.port))
        else:
            if host is None:
                raise ValueError("BrunetNode needs a host or a transport")
            self.name = name or f"bn.{host.name}"
            self.port = port if port is not None else self.config.default_port
            self.uris = UriSet(Uri.udp(host.ip, self.port))
        #: per-node monotonically increasing protocol token (CTM, linking,
        #: pings) — per-node rather than process-global so that two
        #: same-seed runs in one process emit identical token sequences
        self._token_next = 1
        self.table = ConnectionTable(addr)
        self.linker = Linker(self)
        self.peer_uris: dict[BrunetAddress, list[Uri]] = {}
        self.ip_handler: Optional[Callable[[IpEncap], None]] = None
        #: extension point: routed-payload type → handler(packet)
        self.payload_handlers: dict[type, Callable[[RoutedPacket], None]] = {}
        self.stats: Counter = Counter()
        self.bootstrap_uris: list[Uri] = []
        self.overlords: list = []
        self._ping_timer = None
        # observability hooks
        self.on_connection: list[Callable[[Connection], None]] = []
        self.on_disconnection: list[Callable[[Connection], None]] = []
        self.joined_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.table.on_added.append(self._connection_added)
        self.table.on_removed.append(self._connection_removed)
        # pre-resolved metric children: hot paths pay one inc() each
        metrics = sim.obs.metrics
        self._m_sent = metrics.counter("brunet.route.sent", node=self.name)
        self._m_forwarded = metrics.counter("brunet.route.forwarded",
                                            node=self.name)
        self._m_delivered = metrics.counter("brunet.route.delivered",
                                            node=self.name)
        self._m_hops = metrics.histogram("brunet.route.hops",
                                         node=self.name)
        # a lazily-decoded payload that turns out malformed at delivery is
        # the same failure as a transport-level decode error
        self._m_decode_err = metrics.counter("wire.decode_error",
                                             node=self.name)
        self._m_body_drop = metrics.counter("wire.body_decode_drop",
                                            node=self.name)
        metrics.gauge_fn("brunet.connections", lambda: len(self.table),
                         node=self.name)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, bootstrap_uris: list[Uri]) -> None:
        """Open the transport and begin joining via the bootstrap URIs."""
        from repro.brunet.overlords import (
            FarConnectionOverlord,
            LeafConnectionOverlord,
            NearConnectionOverlord,
            ShortcutConnectionOverlord,
        )
        if self.active:
            raise RuntimeError(f"{self.name} already started")
        if self.transport is None:
            from repro.transport.sim import SimTransport
            self.transport = SimTransport(self.sim, self.host, self.port,
                                          wire_mode=self.config.wire_mode,
                                          name=self.name)
        ep = self.transport.open(self._on_datagram)
        if ep != self.uris.local.endpoint:
            # ephemeral-port fallback rebinds elsewhere: the old local URI
            # is dead, so re-anchor the advertised set on the live endpoint
            self.port = ep.port
            self.uris = UriSet(Uri.udp(ep.ip, ep.port))
        self.active = True
        self.started_at = self.sim.now
        self.bootstrap_uris = [u for u in bootstrap_uris
                               if u.endpoint != self.uris.local.endpoint]
        self.shortcut_overlord = ShortcutConnectionOverlord(self)
        self.leaf_overlord = LeafConnectionOverlord(self)
        self.overlords = [
            self.leaf_overlord,
            NearConnectionOverlord(self),
            FarConnectionOverlord(self),
            self.shortcut_overlord,
        ]
        for o in self.overlords:
            o.start()
        self._schedule_ping()
        self.trace("node.start")

    def stop(self, notify: bool = False) -> None:
        """Kill the node: the migration recipe is stop + fresh start
        ("killing and restarting the user-level IPOP program", §V-C).

        ``notify=True`` is the graceful-drain variant a long-running
        daemon uses on SIGTERM: every live peer gets a close message so
        it drops its state immediately instead of waiting out the
        keep-alive timeout (and then re-links around the gap at once).
        Default off — close-notify changes sim trajectories.
        """
        if not self.active:
            return
        self.active = False
        for o in self.overlords:
            o.stop()
        self.linker.cancel_all()
        if self._ping_timer is not None:
            self._ping_timer.cancel()
            self._ping_timer = None
        if self.config.batch_timers:
            sweep_wheel(self.sim, self.config.sweep_granularity).cancel(
                self._sweep_key)
        if notify and self.transport is not None:
            # active is already False, so bypass send_direct's gate — the
            # transport itself is still open until the close below
            for conn in self.table.all():
                self.transport.send(conn.remote_endpoint,
                                    CloseMessage(self.addr, "shutdown"),
                                    size_hint=self.config.size_ping)
        if self.transport is not None:
            self.transport.close()
        self.table.clear()
        self.trace("node.stop")

    def rebootstrap(self, uris: list[Uri]) -> int:
        """Merge fresh bootstrap URIs (cached peers, operator-injected
        seeds) into the rotation and, when the node is currently
        stranded, kick the leaf overlord immediately instead of waiting
        for its next tick.  Returns the number of new URIs adopted.

        This is the runtime half of the cached-peer bootstrap design:
        :meth:`start` seeds the initial URI list; ``rebootstrap`` lets a
        daemon keep feeding the rotation as its peer cache evolves, so a
        node that comes back after every configured seed died still has
        live endpoints to try.
        """
        fresh = [u for u in uris
                 if u.endpoint != self.uris.local.endpoint
                 and u not in self.bootstrap_uris]
        # freshest information first: the leaf overlord walks the list
        # round-robin, so prepending biases the very next attempt
        self.bootstrap_uris[:0] = fresh
        if (fresh and self.active and not self.in_ring
                and self.leaf_connection() is None):
            self.sim.schedule(0.0, self.leaf_overlord.tick)
        return len(fresh)

    # ------------------------------------------------------------------
    # address-space helpers
    # ------------------------------------------------------------------
    @property
    def sock(self):
        """The underlying receive endpoint (``UdpSocket`` for a sim
        transport, the transport itself for live ones); kept for tests and
        tooling that read ``node.sock.received``-style counters."""
        if self.transport is None:
            return None
        return getattr(self.transport, "sock", self.transport)

    def next_token(self) -> int:
        """The node's next protocol token (monotone, per-node)."""
        token = self._token_next
        self._token_next += 1
        return token

    @property
    def in_ring(self) -> bool:
        """True once the node holds at least one structured-near link."""
        return bool(self.table.by_type(ConnectionType.STRUCTURED_NEAR))

    def leaf_connection(self) -> Optional[Connection]:
        """The bootstrap leaf link, if currently up."""
        leafs = self.table.by_type(ConnectionType.LEAF)
        return leafs[0] if leafs else None

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_direct(self, dst: Endpoint, msg: Any, size: int) -> None:
        """One datagram straight to a physical endpoint.  ``size`` is the
        paper-constant byte charge; measured/codec transports substitute
        the encoded length."""
        if self.transport is not None and self.active:
            self.transport.send(dst, msg, size_hint=size)

    def send_over(self, conn: Connection, pkt: RoutedPacket) -> None:
        if pkt.trace is not None:
            self.sim.obs.spans.hop(
                pkt.trace, "route.hop", self.name, self.sim.now,
                hops=pkt.hops, next=str(conn.peer_addr))
        pkt.hops += 1
        pkt.via.append(self.addr)
        conn.packets_sent += 1
        conn.bytes_sent += pkt.size
        if pkt.src != self.addr:
            self.stats["forwarded"] += 1
            self._m_forwarded.inc()
        else:
            self.stats["sent"] += 1
            self._m_sent.inc()
        self.send_direct(conn.remote_endpoint, pkt,
                         pkt.size + self.config.size_routed_header)

    def send_routed(self, dest: BrunetAddress, payload: Any, size: int,
                    exact: bool = True,
                    trace: Optional[TraceRef] = None) -> RoutedPacket:
        pkt = RoutedPacket(src=self.addr, dest=dest, payload=payload,
                           size=size, exact=exact, ttl=self.config.ttl,
                           trace=trace)
        self.route(pkt)
        return pkt

    def connect_to(self, dest: BrunetAddress, conn_type: ConnectionType,
                   via_leaf: bool = False, fanout: int = 0) -> None:
        """Initiate the CTM protocol toward ``dest`` (§IV-B step 1)."""
        reply_via = None
        if via_leaf:
            leaf = self.leaf_connection()
            if leaf is not None:
                reply_via = leaf.peer_addr
            elif not self.in_ring:
                return
            # in-ring with no leaf (e.g. every bootstrap seed died): the
            # repair announce routes over structured links and replies
            # come straight back over the ring — self-healing must not
            # depend on the bootstrap overlay staying alive
        msg = CtmRequest(self.next_token(), self.addr, self.uris.advertised(),
                         conn_type.value, reply_via=reply_via, fanout=fanout)
        ref = None
        spans = self.sim.obs.spans
        if spans.enabled:
            tid = spans.maybe_trace("ctm")
            if tid is not None:
                root = spans.start(
                    "ctm.handshake", node=self.name, t=self.sim.now,
                    trace_id=tid, dest=str(dest),
                    conn_type=conn_type.value, via_leaf=via_leaf)
                ref = TraceRef(tid, root)
        pkt = RoutedPacket(src=self.addr, dest=dest, payload=msg,
                           size=self.config.size_ctm, exact=False,
                           exclude_dest_link=(dest == self.addr),
                           ttl=self.config.ttl, trace=ref)
        self.stats["ctm_sent"] += 1
        self.route(pkt)

    def announce(self) -> None:
        """CTM-to-self through the leaf target: find my ring position
        (§IV-C)."""
        self.connect_to(self.addr, ConnectionType.STRUCTURED_NEAR,
                        via_leaf=True, fanout=1)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, pkt: RoutedPacket) -> None:
        """Greedy-forward (or deliver/drop) one overlay packet."""
        if not self.active:
            return
        if pkt.hops >= pkt.ttl:
            self.stats["ttl_drop"] += 1
            if pkt.trace is not None:
                self.sim.obs.spans.hop(
                    pkt.trace, "route.drop", self.name, self.sim.now,
                    reason="ttl", hops=pkt.hops)
            self.trace("route.ttl_drop", dest=pkt.dest)
            return
        if pkt.dest == self.addr and not pkt.exclude_dest_link:
            self._deliver(pkt)
            return
        conn = next_hop(self.table, self.addr, pkt.dest,
                        pkt.exclude_dest_link, pkt.approach)
        if conn is not None:
            self.send_over(conn, pkt)
            return
        # local minimum
        if pkt.src == self.addr and pkt.hops == 0:
            leaf = self.leaf_connection()
            if leaf is not None:
                self.send_over(leaf, pkt)
                return
            if pkt.dest == self.addr and pkt.exclude_dest_link:
                # announce with no leaf (every bootstrap seed dead): a
                # CTM-to-self can never leave this node greedily — no peer
                # is closer to my own address than me — so launch it over
                # the nearest structured link; exclude_dest_link keeps
                # intermediate hops from short-circuiting straight back,
                # and the packet terminates at whichever live node is now
                # actually closest to us (ring repair without bootstrap)
                conns = self.table.structured()
                if conns:
                    conn = min(conns, key=lambda c: ring_distance(
                        c.peer_addr, self.addr))
                    self.send_over(conn, pkt)
                    return
        if pkt.exact and pkt.dest != self.addr:
            self.stats["undeliverable"] += 1
            if pkt.trace is not None:
                self.sim.obs.spans.hop(
                    pkt.trace, "route.drop", self.name, self.sim.now,
                    reason="undeliverable", hops=pkt.hops)
            self.trace("route.undeliverable", dest=pkt.dest)
            return
        self._deliver(pkt)

    def _deliver(self, pkt: RoutedPacket) -> None:
        payload = pkt.payload
        if type(payload) is wire.RawBody:
            # codec mode deferred the body decode across transit hops;
            # pay it exactly once, here, at local delivery
            try:
                payload = wire.materialize(payload)
            except wire.DecodeError:
                self.stats["body_decode_drop"] += 1
                self._m_decode_err.inc()
                self._m_body_drop.inc()
                if pkt.trace is not None:
                    spans = self.sim.obs.spans
                    spans.hop(pkt.trace, "wire.decode_drop", self.name,
                              self.sim.now, hops=pkt.hops)
                    spans.end_trace(pkt.trace.trace_id, self.sim.now,
                                    decode_error=True)
                return
            pkt.payload = payload
        self.stats["delivered"] += 1
        self._m_delivered.inc()
        self._m_hops.observe(pkt.hops)
        if pkt.trace is not None:
            self.sim.obs.spans.hop(
                pkt.trace, "route.deliver", self.name, self.sim.now,
                hops=pkt.hops, kind=type(payload).__name__)
        if isinstance(payload, CtmRequest):
            self._handle_ctm_request(pkt, payload)
        elif isinstance(payload, CtmReply):
            self._handle_ctm_reply(pkt, payload)
        elif isinstance(payload, Forward):
            inner = RoutedPacket(src=pkt.src, dest=payload.final_dest,
                                 payload=payload.inner, size=payload.size,
                                 exact=True, ttl=self.config.ttl,
                                 hops=pkt.hops, trace=pkt.trace)
            self.route(inner)
        elif isinstance(payload, IpEncap):
            if pkt.dest == self.addr and self.ip_handler is not None:
                if pkt.trace is not None:
                    self.sim.obs.spans.end_trace(
                        pkt.trace.trace_id, self.sim.now,
                        hops=pkt.hops, dest_node=self.name)
                self.ip_handler(payload)
            else:
                self.stats["ip_drop"] += 1
        else:
            handler = self.payload_handlers.get(type(payload))
            if handler is not None:
                handler(pkt)
            else:
                self.trace("route.unhandled", kind=type(payload).__name__)

    # ------------------------------------------------------------------
    # CTM protocol
    # ------------------------------------------------------------------
    def _handle_ctm_request(self, pkt: RoutedPacket, msg: CtmRequest) -> None:
        if msg.initiator_addr == self.addr:
            return
        self.stats["ctm_received"] += 1
        conn_type = ConnectionType(msg.conn_type)
        reply = CtmReply(msg.token, self.addr, self.uris.advertised(),
                         msg.conn_type)
        # the reply travels its own overlay path: branch a fresh ref off
        # the request's arrival point so both paths share the trace but
        # re-parent independently
        reply_ref = (TraceRef(pkt.trace.trace_id, pkt.trace.parent)
                     if pkt.trace is not None else None)
        if msg.reply_via is not None and msg.reply_via != self.addr:
            fwd = Forward(msg.initiator_addr, reply, self.config.size_ctm)
            self.send_routed(msg.reply_via, fwd, self.config.size_ctm,
                             exact=True, trace=reply_ref)
        else:
            self.send_routed(msg.initiator_addr, reply, self.config.size_ctm,
                             exact=True, trace=reply_ref)
        self.linker.start(msg.initiator_addr, msg.initiator_uris, conn_type,
                          trace=pkt.trace)
        if pkt.dest != self.addr and msg.fanout > 0:
            self._ctm_fanout(pkt, msg)

    def _ctm_fanout(self, pkt: RoutedPacket, msg: CtmRequest) -> None:
        """Re-launch a join announce toward the joiner's *other* ring
        neighbour using side-constrained greedy routing, so the joiner
        learns both neighbours even when this responder is not connected to
        the node on the far side (§IV-C)."""
        joining = pkt.dest
        i_am_right = (directed_distance(joining, self.addr)
                      <= directed_distance(self.addr, joining))
        approach = "left" if i_am_right else "right"
        copy = dataclasses.replace(msg, fanout=msg.fanout - 1)
        fan_ref = (TraceRef(pkt.trace.trace_id, pkt.trace.parent)
                   if pkt.trace is not None else None)
        fan_pkt = RoutedPacket(src=pkt.src, dest=joining, payload=copy,
                               size=pkt.size, exact=False,
                               exclude_dest_link=True, approach=approach,
                               ttl=self.config.ttl, hops=pkt.hops,
                               trace=fan_ref)
        self.route(fan_pkt)

    def _handle_ctm_reply(self, pkt: RoutedPacket, msg: CtmReply) -> None:
        self.stats["ctm_reply_received"] += 1
        conn_type = ConnectionType(msg.conn_type)
        self.linker.start(msg.responder_addr, msg.responder_uris, conn_type,
                          trace=pkt.trace)

    # ------------------------------------------------------------------
    # datagram dispatch
    # ------------------------------------------------------------------
    def _on_datagram(self, payload: Any, src: Endpoint, size: int) -> None:
        if not self.active:
            return
        if isinstance(payload, RoutedPacket):
            if payload.via:
                conn = self.table.get(payload.via[-1])
                if conn is not None:
                    conn.heard_from(self.sim.now)
                    conn.packets_received += 1
            self.route(payload)
        elif isinstance(payload, LinkRequest):
            self.linker.handle_request(payload, src)
        elif isinstance(payload, LinkReply):
            self.linker.handle_reply(payload, src)
        elif isinstance(payload, LinkError):
            self.linker.handle_error(payload, src)
        elif isinstance(payload, PingRequest):
            self._handle_ping_request(payload, src)
        elif isinstance(payload, PingReply):
            self._handle_ping_reply(payload, src)
        elif isinstance(payload, CloseMessage):
            self.table.remove(payload.sender_addr)
        else:
            self.trace("datagram.unhandled", kind=type(payload).__name__)

    # ------------------------------------------------------------------
    # keep-alive (§IV-B)
    # ------------------------------------------------------------------
    @property
    def _sweep_key(self) -> tuple:
        """Shared-wheel key: address first, so batched sweeps walk due
        connections in ring-address order."""
        return (int(self.addr), self.name, "ping")

    def _schedule_ping(self) -> None:
        cfg = self.config
        delay = cfg.ping_interval / 2
        if cfg.batch_timers:
            sweep_wheel(self.sim, cfg.sweep_granularity).schedule(
                self._sweep_key, delay, self._ping_tick)
        else:
            self._ping_timer = self.sim.schedule(delay, self._ping_tick)

    def _ping_tick(self) -> None:
        if not self.active:
            return
        now = self.sim.now
        cfg = self.config
        for conn in self.table.all():
            if conn.unanswered_pings > cfg.ping_retries:
                self.drop_connection(conn, reason="ping-timeout")
                continue
            if (cfg.liveness_timeout > 0
                    and now - conn.last_heard > cfg.liveness_timeout):
                # hard backstop: nothing heard for the whole window — even
                # if ping accounting was confused (e.g. replies swallowed
                # by a blackout that lifted), the peer is treated as dead
                self.drop_connection(conn, reason="liveness-timeout")
                continue
            if now - conn.last_heard >= cfg.ping_interval:
                req = PingRequest(self.next_token(), self.addr)
                conn.unanswered_pings += 1
                self.send_direct(conn.remote_endpoint, req, cfg.size_ping)
        self._schedule_ping()

    def _handle_ping_request(self, msg: PingRequest, src: Endpoint) -> None:
        conn = self.table.get(msg.sender_addr)
        if conn is not None:
            conn.heard_from(self.sim.now)
            conn.remote_endpoint = src  # tracks NAT re-mappings (§V-E)
        reply = PingReply(msg.token, self.addr, Uri("udp", src),
                          known=conn is not None)
        self.send_direct(src, reply, self.config.size_ping)

    def _handle_ping_reply(self, msg: PingReply, src: Endpoint) -> None:
        if self.uris.learn(msg.observed_uri):
            self.trace("uri.learned", uri=str(msg.observed_uri))
        conn = self.table.get(msg.sender_addr)
        if conn is None:
            return
        if not msg.known:
            # the peer answers but holds no state for us: it restarted (or
            # its close-notify was lost).  Drop the zombie link so the
            # overlords' on_disconnection repair hooks re-establish it.
            self.drop_connection(conn, reason="peer-forgot")
            return
        conn.heard_from(self.sim.now)
        conn.remote_endpoint = src

    def drop_connection(self, conn: Connection, reason: str,
                        notify: bool = False) -> None:
        """Discard connection state ("any unresponded ping message is
        perceived as the node going down", §IV-B).  ``notify`` sends a
        graceful close so the peer drops its state immediately instead of
        waiting out the keep-alive timeout."""
        self.trace("conn.drop", peer=conn.peer_addr, reason=reason,
                   conn_type=conn.conn_type.value)
        if notify:
            self.send_direct(conn.remote_endpoint,
                             CloseMessage(self.addr, reason),
                             self.config.size_ping)
        self.table.remove(conn.peer_addr)

    # ------------------------------------------------------------------
    # IPOP hooks
    # ------------------------------------------------------------------
    def inspect_traffic(self, dest_addr: BrunetAddress,
                        packets: int = 1) -> None:
        """Feed outbound virtual-IP traffic into the shortcut score queue."""
        if self.active and self.overlords:
            self.shortcut_overlord.observe(dest_addr, packets)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _connection_added(self, conn: Connection) -> None:
        self.trace("conn.add", peer=conn.peer_addr,
                   conn_type=conn.conn_type.value,
                   ep=str(conn.remote_endpoint))
        if (self.joined_at is None
                and ConnectionType.STRUCTURED_NEAR in conn.types):
            self.joined_at = self.sim.now
        for cb in list(self.on_connection):
            cb(conn)

    def _connection_removed(self, conn: Connection) -> None:
        for cb in list(self.on_disconnection):
            cb(conn)

    def trace(self, category: str, **data: Any) -> None:
        """Record a node-stamped trace event.

        Fans in to the flight recorder (when one is enabled) and the sim
        tracer; with the tracer disabled only its exact counters are
        touched, so category counts survive big untraced sweeps."""
        sim = self.sim
        recorder = sim.obs.recorder
        if recorder is not None:
            recorder.record(sim.now, self.name, category, data)
        tracer = sim.tracer
        if tracer.enabled:
            data["node"] = self.name
            tracer.record(sim.now, category, data)
        else:
            tracer.counters[category] += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BrunetNode {self.name} {self.addr!r} conns={len(self.table)}>"
