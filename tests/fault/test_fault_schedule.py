"""FaultSchedule: scripted crashes, blackouts, loss bursts, NAT faults."""

import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.uri import Uri
from repro.fault import Blackout, BurstLoss, FaultSchedule
from repro.phys import Internet, NatSpec, Site
from repro.sim import Simulator
from tests.conftest import build_overlay


def _raw_pair(internet, site_a="sa", site_b="sb"):
    """Two public hosts with bound UDP sockets; returns (host_a, host_b,
    received list on b)."""
    a = Site(internet, site_a).add_host("ha")
    b = Site(internet, site_b).add_host("hb")
    got = []
    a.bind_udp(9000, lambda payload, src, size: None)
    b.bind_udp(9000, lambda payload, src, size: got.append(payload))
    return a, b, got


class TestNodeChurn:
    def test_crash_fires_at_scheduled_time_and_is_logged(self, sim, internet):
        nodes, _ = build_overlay(sim, internet, 4)
        faults = FaultSchedule(sim, internet)
        victim = nodes[2]
        event = faults.crash_node(sim.now + 25.0, victim)
        assert faults.armed == [event] and faults.fired == []
        sim.run(until=event.time - 1.0)
        assert victim.active
        sim.run(until=event.time + 1.0)
        assert not victim.active
        assert [(e.kind, e.detail) for e in faults.fired] \
            == [("node.crash", victim.name)]

    def test_restart_rejoins_the_ring(self, sim, internet):
        nodes, bootstrap = build_overlay(sim, internet, 5)
        faults = FaultSchedule(sim, internet)
        victim = nodes[3]
        faults.crash_node(sim.now + 5.0, victim)
        faults.restart_node(sim.now + 120.0, victim, bootstrap)
        sim.run(until=sim.now + 110.0)
        assert not victim.active
        sim.run(until=sim.now + 120.0)
        assert victim.active and victim.in_ring

    def test_crash_bootstrap_seed_resolves_victim_at_fire_time(self):
        from repro.core.wow import Deployment
        sim = Simulator(seed=7)
        dep = Deployment(sim)
        site = dep.add_public_site("pl")
        faults = FaultSchedule(sim, dep.internet)
        # armed before any seed exists: resolution must happen at fire time
        faults.crash_bootstrap_seed(40.0, dep, index=0)
        seed_node = dep.add_router_node(site.add_host("seed0"), seed=True)
        for i in range(3):
            dep.add_router_node(site.add_host(f"r{i}"))
            sim.run(until=sim.now + 3.0)
        sim.run(until=39.0)
        assert seed_node.active
        sim.run(until=41.0)
        assert not seed_node.active

    def test_host_crash_and_boot(self, sim, internet):
        site = Site(internet, "s")
        host = site.add_host("h")
        faults = FaultSchedule(sim, internet)
        faults.crash_host(10.0, host)
        faults.boot_host(20.0, host)
        sim.run(until=15.0)
        assert not host.up
        sim.run(until=25.0)
        assert host.up


class TestPathFaults:
    def test_blackout_window_drops_then_lifts(self, sim, internet):
        a, b, got = _raw_pair(internet)
        faults = FaultSchedule(sim, internet, name="f")
        rule = faults.blackout(10.0, 20.0, a, "sb")
        send = lambda tag: a.sockets[9000].send(b.sockets[9000].endpoint, tag)
        sim.schedule_at(5.0, send, "before")
        sim.schedule_at(15.0, send, "during")
        sim.schedule_at(35.0, send, "after")
        sim.run(until=40.0)
        assert got == ["before", "after"]
        assert rule.dropped == 1
        assert internet.drops[f"fault:{rule.name}"] == 1
        assert internet.fault_rules == []  # uninstalled at window end

    def test_blackout_symmetric_covers_reverse_direction(self, sim, internet):
        a, b, _ = _raw_pair(internet)
        got_a = []
        a.sockets[9000].handler = lambda payload, src, size: got_a.append(payload)
        faults = FaultSchedule(sim, internet)
        faults.blackout(0.0, 50.0, a, b, symmetric=True)
        sim.schedule_at(10.0, b.sockets[9000].send,
                        a.sockets[9000].endpoint, "rev")
        sim.run(until=20.0)
        assert got_a == []

    def test_burst_loss_extremes_and_window(self, sim, internet):
        a, b, got = _raw_pair(internet)
        faults = FaultSchedule(sim, internet, name="f")
        rule = faults.burst_loss(10.0, 10.0, prob=1.0, a=a, b=b)
        send = lambda tag: a.sockets[9000].send(b.sockets[9000].endpoint, tag)
        for t, tag in [(5.0, "pre"), (12.0, "in1"), (18.0, "in2"),
                       (25.0, "post")]:
            sim.schedule_at(t, send, tag)
        sim.run(until=30.0)
        assert got == ["pre", "post"]
        assert rule.dropped == 2

    def test_burst_loss_rejects_bad_probability(self, sim):
        with pytest.raises(ValueError):
            BurstLoss(1.5, sim.rng.stream("x"))

    def test_path_faults_require_an_internet(self, sim):
        faults = FaultSchedule(sim)  # no internet wired in
        with pytest.raises(ValueError):
            faults.blackout(0.0, 1.0)

    def test_unmatched_traffic_unaffected(self, sim, internet):
        a, b, got = _raw_pair(internet)
        c = Site(internet, "sc").add_host("hc")
        c.bind_udp(9000, lambda payload, src, size: None)
        faults = FaultSchedule(sim, internet)
        faults.blackout(0.0, 50.0, a, c)  # a<->c, not a<->b
        sim.schedule_at(10.0, a.sockets[9000].send,
                        b.sockets[9000].endpoint, "ok")
        sim.run(until=20.0)
        assert got == ["ok"]


class TestNatFaults:
    def _natted_pair(self, internet):
        priv = Site(internet, "home", subnet="10.9.",
                    nat_spec=NatSpec.cone())
        pub = Site(internet, "pub")
        inner = priv.add_host("inner")
        outer = pub.add_host("outer")
        inner.bind_udp(9000, lambda payload, src, size: None)
        outer.bind_udp(9000, lambda payload, src, size: None)
        return priv, inner, outer

    def test_nat_reboot_flushes_every_mapping(self, sim, internet):
        priv, inner, outer = self._natted_pair(internet)
        inner.sockets[9000].send(outer.sockets[9000].endpoint, "open")
        sim.run(until=1.0)
        assert priv.nat._by_key
        faults = FaultSchedule(sim, internet)
        faults.nat_reboot(5.0, priv.nat)
        sim.run(until=6.0)
        assert not priv.nat._by_key and not priv.nat._by_port
        assert [e.kind for e in faults.fired] == ["nat.reboot"]

    def test_nat_mapping_timeout_shrinks_expiry(self, sim, internet):
        priv, inner, outer = self._natted_pair(internet)
        original = priv.nat.spec.mapping_timeout
        faults = FaultSchedule(sim, internet)
        faults.nat_mapping_timeout(5.0, priv.nat, 2.0)
        sim.run(until=6.0)
        assert priv.nat.spec.mapping_timeout == 2.0 != original
        # a mapping opened under the shrunken window dies after 2 s idle
        inner.sockets[9000].send(outer.sockets[9000].endpoint, "open")
        mapping = next(iter(priv.nat._by_key.values()))
        assert not priv.nat._expired(mapping)
        sim.run(until=sim.now + 5.0)
        assert priv.nat._expired(mapping)


class TestDeterminism:
    def _scripted_run(self, seed):
        sim = Simulator(seed=seed)
        internet = Internet(sim)
        nodes, bootstrap = build_overlay(sim, internet, 5)
        faults = FaultSchedule(sim, internet, name="det")
        faults.crash_node(sim.now + 10.0, nodes[2])
        faults.burst_loss(sim.now + 5.0, 30.0, prob=0.5)
        faults.restart_node(sim.now + 90.0, nodes[2], bootstrap)
        sim.run(until=sim.now + 150.0)
        drops = dict(internet.drops)
        return ([(e.time, e.kind, e.detail) for e in faults.fired], drops)

    def test_same_seed_same_fault_trace(self):
        assert self._scripted_run(42) == self._scripted_run(42)

    def test_armed_log_preserves_arming_order(self, sim, internet):
        faults = FaultSchedule(sim, internet)
        e2 = faults.at(20.0, "b", "second", lambda: None)
        e1 = faults.at(10.0, "a", "first", lambda: None)
        assert faults.armed == [e2, e1]
        sim.run(until=30.0)
        assert [e.kind for e in faults.fired] == ["a", "b"]
