"""End-to-end observability: metrics, causal traces, flight recorder.

Three cooperating pieces, owned per-simulation by
:class:`~repro.obs.hub.Observability` (``sim.obs``):

* :mod:`repro.obs.metrics` — labeled counters/gauges/log-bucketed
  histograms with namespaced series and JSONL/CSV export;
* :mod:`repro.obs.spans` — trace ids stamped on packets at the IPOP tap
  (and on CTMs at ``connect_to``), propagated through every routing hop,
  linking handshake, NAT traversal and physical delivery, reconstructable
  as a span tree;
* :mod:`repro.obs.recorder` — a bounded per-node ring of recent events
  with optional JSONL spill (size-rotated, optionally gzipped);
* :mod:`repro.obs.prof` — the kernel self-profiler: per-subsystem /
  per-handler wall-time attribution, kernel health, a top-K heavy-node
  sketch, flamegraph-ready collapsed stacks.

``python -m repro.obs.inspect <export-dir>`` renders node health, the
connection census, slowest routes, and per-trace span trees from a run's
export (see :mod:`repro.obs.inspect`); ``python -m repro.obs.top``
attaches a live refreshing dashboard to a running overlay — in-process
or over a :meth:`~repro.transport.runtime.RealtimeKernel.serve_stats`
UDP socket (see :mod:`repro.obs.top`).
"""

from repro.obs.hub import Observability
from repro.obs.metrics import (
    Counter,
    DeltaReader,
    Gauge,
    Histogram,
    MetricsRegistry,
    SectorRollup,
)
from repro.obs.prof import KernelProfiler, SpaceSavingSketch, categorize
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span, SpanCollector, TraceRef, span_tree

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DeltaReader",
    "SectorRollup",
    "SpanCollector",
    "Span",
    "TraceRef",
    "span_tree",
    "FlightRecorder",
    "KernelProfiler",
    "SpaceSavingSketch",
    "categorize",
]
