"""Figure 5: the three regimes of dropped ICMP packets during join.

Zoom of Fig. 4's UFL-NWU loss profile over the first 50 sequence numbers:
(1) the new node is not yet routable — ~90% loss; (2) routable over
multi-hop P2P routes — loss falls below a few percent; (3) a shortcut to
the target is up — ~1% loss and flat low RTT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import fig4_join_profile
from repro.experiments.common import ExperimentSetup, print_table


@dataclass
class RegimeSummary:
    case: str
    regime1_end: int  # first seq with a reply (routability)
    regime2_end: int  # median shortcut sequence
    loss_regime1_pct: float
    loss_regime2_pct: float
    loss_regime3_pct: float


def summarize(profiles: dict[str, fig4_join_profile.JoinProfile]
              ) -> list[RegimeSummary]:
    out = []
    for case, prof in profiles.items():
        loss = prof.loss_pct
        replies = prof.rtt_n
        first_reply = int(np.argmax(replies > 0)) if replies.any() else prof.count
        sc = (int(np.median(prof.shortcut_seqs)) if prof.shortcut_seqs
              else prof.count)
        sc = max(sc, first_reply + 1)
        r1 = loss[:max(first_reply, 1)]
        r2 = loss[first_reply:sc]
        r3 = loss[sc:]
        out.append(RegimeSummary(
            case, first_reply, sc,
            float(r1.mean()) if r1.size else 0.0,
            float(r2.mean()) if r2.size else 0.0,
            float(r3.mean()) if r3.size else 0.0))
    return out


def run(seed: int = 0, scale: float = 1.0, trials_per_case: int = 10,
        count: int = 400, setup: ExperimentSetup | None = None,
        profiles=None) -> list[RegimeSummary]:
    if profiles is None:
        profiles = fig4_join_profile.run(seed=seed, scale=scale,
                                         trials_per_case=trials_per_case,
                                         count=count, setup=setup)
    return summarize(profiles)


def report(summaries: list[RegimeSummary]) -> None:
    print_table(
        "Figure 5 — dropped-packet regimes during join",
        ["case", "regime1 ends", "regime2 ends (shortcut)",
         "loss r1", "loss r2", "loss r3"],
        [[s.case, s.regime1_end, s.regime2_end,
          f"{s.loss_regime1_pct:.0f}%", f"{s.loss_regime2_pct:.1f}%",
          f"{s.loss_regime3_pct:.1f}%"] for s in summaries])


def main(seed: int = 0, scale: float = 0.5, trials: int = 3):
    summaries = run(seed=seed, scale=scale, trials_per_case=trials)
    report(summaries)
    return summaries


if __name__ == "__main__":  # pragma: no cover
    main()
