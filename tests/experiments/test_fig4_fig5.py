"""Fig. 4/5 shape tests: the three regimes and their site-pair ordering."""

import numpy as np
import pytest

from repro.experiments import fig4_join_profile, fig5_regimes
from repro.experiments.common import make_testbed


@pytest.fixture(scope="module")
def profiles():
    setup = make_testbed(seed=2, scale=0.2)
    return fig4_join_profile.run(setup=setup, trials_per_case=2, count=260)


def test_all_cases_measured(profiles):
    assert set(profiles) == {"UFL-UFL", "UFL-NWU", "NWU-NWU"}
    for prof in profiles.values():
        assert prof.trials == 2


def test_regime1_initial_losses(profiles):
    """The first packets are lost while the joining node is unroutable."""
    for prof in profiles.values():
        assert prof.loss_pct[0] == 100.0


def test_routability_within_seconds(profiles):
    for case, prof in profiles.items():
        first = int(np.argmax(prof.rtt_n > 0))
        assert first <= 15, f"{case} routable only at seq {first}"


def test_multihop_rtt_magnitude(profiles):
    """Regime 2 RTT is dominated by loaded PlanetLab forwarding (~146 ms
    in the paper)."""
    prof = profiles["UFL-NWU"]
    mid = prof.summary()["rtt_mid_ms"]
    assert 60.0 <= mid <= 320.0


def test_direct_rtt_after_shortcut(profiles):
    """UFL-NWU settles at ~38 ms; the LAN cases at a few ms."""
    wan = profiles["UFL-NWU"].summary()["rtt_final_ms"]
    assert 30.0 <= wan <= 50.0
    for case in ("UFL-UFL", "NWU-NWU"):
        lan = profiles[case].summary()["rtt_final_ms"]
        assert lan < 15.0


def test_shortcut_timing_ordering(profiles):
    """The paper's key qualitative result: UFL-UFL shortcuts are delayed by
    the hairpin-dead URI ladder (~200 pings); the other cases form within
    tens of pings."""
    sc = {case: prof.summary()["median_shortcut_seq"]
          for case, prof in profiles.items()}
    assert sc["UFL-NWU"] is not None and sc["UFL-NWU"] <= 60
    assert sc["NWU-NWU"] is not None and sc["NWU-NWU"] <= 60
    assert sc["UFL-UFL"] is not None
    assert 120 <= sc["UFL-UFL"] <= 240
    assert sc["UFL-UFL"] > 2.5 * sc["UFL-NWU"]


def test_fig5_regime_summaries(profiles):
    summaries = fig5_regimes.summarize(profiles)
    by_case = {s.case: s for s in summaries}
    for s in summaries:
        assert 0 <= s.regime1_end < s.regime2_end
        # loss falls from regime 1 to regime 3
        assert s.loss_regime1_pct >= s.loss_regime3_pct
    assert by_case["UFL-UFL"].regime2_end > by_case["NWU-NWU"].regime2_end


def test_loss_drops_below_few_percent_after_shortcut(profiles):
    for case, prof in profiles.items():
        sc = prof.summary()["median_shortcut_seq"]
        if sc is None:
            continue
        tail = prof.loss_pct[int(sc) + 10:]
        if tail.size:
            assert tail.mean() <= 5.0
