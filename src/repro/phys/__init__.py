"""Physical substrate: hosts, sites, NAT/firewall middleboxes, the WAN.

This package replaces the paper's testbed hardware (campus networks, NAT
routers, PlanetLab hosts) with an event-driven model.  Control traffic is
simulated per-datagram (:mod:`repro.phys.network`); bulk data uses a
max-min-fair fluid-flow model (:mod:`repro.phys.flows`).
"""

from repro.phys.endpoints import Endpoint, ip_in_subnet
from repro.phys.packet import Datagram
from repro.phys.nat import (
    Nat,
    NatSpec,
    MappingBehavior,
    FilteringBehavior,
    FirewallPolicy,
)
from repro.phys.host import Host, UdpSocket
from repro.phys.latency import LatencyModel
from repro.phys.topology import Site
from repro.phys.network import Internet
from repro.phys.flows import Flow, FlowManager, Resource

__all__ = [
    "Endpoint",
    "ip_in_subnet",
    "Datagram",
    "Nat",
    "NatSpec",
    "MappingBehavior",
    "FilteringBehavior",
    "FirewallPolicy",
    "Host",
    "UdpSocket",
    "LatencyModel",
    "Site",
    "Internet",
    "Flow",
    "FlowManager",
    "Resource",
]
