"""ASCII plotting, CSV export and overlay diagnostics."""

import csv
import math
import os

import pytest

from repro.brunet.stats import shortcut_census, survey
from repro.experiments.plotting import (
    ascii_histogram,
    ascii_plot,
    export_csv,
    export_series_csv,
)
from tests.conftest import make_mini_testbed


class TestAsciiPlot:
    def test_renders_all_series_markers(self):
        out = ascii_plot({"a": ([0, 1, 2], [0, 1, 4]),
                          "b": ([0, 1, 2], [4, 1, 0])}, title="t")
        assert "t" in out
        assert "*" in out and "o" in out
        assert "a" in out and "b" in out

    def test_empty_series(self):
        assert "(no data)" in ascii_plot({"x": ([], [])}, title="empty")

    def test_nan_values_skipped(self):
        out = ascii_plot({"a": ([0, 1], [float("nan"), 2.0])})
        assert out  # renders without raising

    def test_constant_series(self):
        out = ascii_plot({"flat": ([0, 1, 2], [5, 5, 5])})
        assert "*" in out

    def test_axis_labels_present(self):
        out = ascii_plot({"a": ([0, 10], [0, 1])}, xlabel="seconds")
        assert "seconds" in out
        assert "10" in out


class TestHistogramAndCsv:
    def test_histogram_percentages_sum(self):
        out = ascii_histogram([1, 2, 3, 9, 9, 9], bins=[0, 5, 10],
                              title="h")
        assert "h" in out
        assert "50.0%" in out

    def test_export_csv(self, tmp_path):
        path = export_csv(str(tmp_path / "sub" / "out.csv"),
                          ("a", "b"), [(1, 2), (3, 4)])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_export_series_csv(self, tmp_path):
        path = export_series_csv(str(tmp_path / "series.csv"),
                                 {"s1": ([0, 1], [5, 6])})
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[1] == ["s1", "0", "5"]


class TestSurvey:
    @pytest.fixture(scope="class")
    def bed(self):
        return make_mini_testbed(seed=66)

    def test_survey_counts_make_sense(self, bed):
        sim, tb = bed
        s = survey(tb.deployment, sample_sources=6)
        assert s.n_nodes == 12 + 33
        assert s.ring_consistent
        assert s.degree_mean > 2
        assert s.connections_by_type["structured.near"] > 0
        assert s.hop_mean >= 1.0
        assert s.unreachable_pairs == 0
        assert any("nodes:" in line for line in s.summary_lines())

    def test_shortcut_census_counts_pairs(self, bed):
        sim, tb = bed
        from repro.ipop import Pinger
        pinger = Pinger(tb.vm(3).router)
        done = pinger.run(tb.vm(18).virtual_ip, count=60, interval=1.0)
        sim.run(until=sim.now + 70)
        pinger.close()
        census = shortcut_census(tb.deployment)
        assert census.get("nwu~ufl", 0) >= 1
