"""URI parsing and the UriSet advertisement ordering."""

import pytest

from repro.brunet.uri import Uri, UriSet
from repro.phys.endpoints import Endpoint


def test_uri_str_and_parse_roundtrip():
    uri = Uri.udp("192.0.1.1", 1024)
    assert str(uri) == "brunet.udp:192.0.1.1:1024"
    assert Uri.parse(str(uri)) == uri


def test_parse_rejects_non_brunet():
    with pytest.raises(ValueError):
        Uri.parse("http:1.2.3.4:80")


def test_uriset_advertises_local_when_nothing_learned():
    us = UriSet(Uri.udp("10.0.0.2", 14001))
    assert us.advertised() == [Uri.udp("10.0.0.2", 14001)]


def test_learned_nat_uri_comes_first():
    """Paper §V-B: nodes try the NAT-assigned public IP/port first."""
    local = Uri.udp("10.0.0.2", 14001)
    public = Uri.udp("200.0.0.1", 20000)
    us = UriSet(local)
    assert us.learn(public)
    assert us.advertised() == [public, local]


def test_relearning_same_uri_is_not_new():
    us = UriSet(Uri.udp("10.0.0.2", 14001))
    pub = Uri.udp("200.0.0.1", 20000)
    assert us.learn(pub)
    assert not us.learn(pub)


def test_learning_local_is_ignored():
    local = Uri.udp("10.0.0.2", 14001)
    us = UriSet(local)
    assert not us.learn(local)
    assert us.advertised() == [local]


def test_freshest_learned_uri_moves_to_front():
    """NAT re-translation (§V-E): the newest observed mapping wins."""
    us = UriSet(Uri.udp("10.0.0.2", 14001))
    old = Uri.udp("200.0.0.1", 20000)
    new = Uri.udp("200.0.0.1", 20017)
    us.learn(old)
    us.learn(new)
    assert us.advertised()[0] == new
    assert us.learn(old)  # re-confirmation brings it back to front
    assert us.advertised()[0] == old


def test_learned_list_bounded():
    us = UriSet(Uri.udp("10.0.0.2", 14001))
    for port in range(20000, 20010):
        us.learn(Uri.udp("200.0.0.1", port))
    assert len(us.advertised()) <= 5


def test_contains():
    local = Uri.udp("10.0.0.2", 14001)
    us = UriSet(local)
    pub = Uri.udp("200.0.0.1", 20000)
    us.learn(pub)
    assert local in us and pub in us
    assert Uri.udp("1.1.1.1", 1) not in us
