"""NAT middlebox semantics: mapping, filtering, hairpin, expiry."""

import pytest

from repro.phys.endpoints import Endpoint
from repro.phys.nat import (
    FilteringBehavior,
    FirewallPolicy,
    MappingBehavior,
    Nat,
    NatSpec,
)

INNER = Endpoint("10.1.0.2", 14001)
REMOTE_A = Endpoint("128.0.0.5", 9000)
REMOTE_B = Endpoint("128.0.0.6", 9000)
REMOTE_A2 = Endpoint("128.0.0.5", 9001)


def make_nat(spec, clock=None):
    return Nat("n", "200.0.0.1", "10.1.", spec, clock=clock or (lambda: 0.0))


def test_eim_mapping_is_stable_across_remotes():
    nat = make_nat(NatSpec.cone())
    pub_a = nat.translate_outbound("udp", INNER, REMOTE_A)
    pub_b = nat.translate_outbound("udp", INNER, REMOTE_B)
    assert pub_a == pub_b
    assert pub_a.ip == "200.0.0.1"


def test_symmetric_mapping_differs_per_remote():
    nat = make_nat(NatSpec.symmetric())
    pub_a = nat.translate_outbound("udp", INNER, REMOTE_A)
    pub_b = nat.translate_outbound("udp", INNER, REMOTE_B)
    assert pub_a != pub_b


def test_port_restricted_filtering():
    nat = make_nat(NatSpec.cone())
    pub = nat.translate_outbound("udp", INNER, REMOTE_A)
    # contacted remote passes
    assert nat.translate_inbound("udp", pub.port, REMOTE_A) == INNER
    # same IP, different port: blocked under APDF
    assert nat.translate_inbound("udp", pub.port, REMOTE_A2) is None
    # different host: blocked
    assert nat.translate_inbound("udp", pub.port, REMOTE_B) is None
    assert nat.drops["filtering"] == 2


def test_address_dependent_filtering_allows_other_port():
    spec = NatSpec(MappingBehavior.ENDPOINT_INDEPENDENT,
                   FilteringBehavior.ADDRESS_DEPENDENT, True, 120.0)
    nat = make_nat(spec)
    pub = nat.translate_outbound("udp", INNER, REMOTE_A)
    assert nat.translate_inbound("udp", pub.port, REMOTE_A2) == INNER
    assert nat.translate_inbound("udp", pub.port, REMOTE_B) is None


def test_full_cone_filtering_allows_anyone():
    spec = NatSpec(MappingBehavior.ENDPOINT_INDEPENDENT,
                   FilteringBehavior.ENDPOINT_INDEPENDENT, True, 120.0)
    nat = make_nat(spec)
    pub = nat.translate_outbound("udp", INNER, REMOTE_A)
    assert nat.translate_inbound("udp", pub.port, REMOTE_B) == INNER


def test_inbound_without_mapping_dropped():
    nat = make_nat(NatSpec.cone())
    assert nat.translate_inbound("udp", 20000, REMOTE_A) is None
    assert nat.drops["no_mapping"] == 1


def test_mapping_expiry():
    clock = {"t": 0.0}
    nat = make_nat(NatSpec.cone(timeout=120.0), clock=lambda: clock["t"])
    pub = nat.translate_outbound("udp", INNER, REMOTE_A)
    clock["t"] = 100.0
    assert nat.translate_inbound("udp", pub.port, REMOTE_A) == INNER
    clock["t"] = 300.0  # idle > timeout since last use (100.0)
    assert nat.translate_inbound("udp", pub.port, REMOTE_A) is None


def test_traffic_refreshes_mapping():
    clock = {"t": 0.0}
    nat = make_nat(NatSpec.cone(timeout=120.0), clock=lambda: clock["t"])
    pub = nat.translate_outbound("udp", INNER, REMOTE_A)
    for step in range(1, 10):
        clock["t"] = step * 100.0
        assert nat.translate_inbound("udp", pub.port, REMOTE_A) == INNER


def test_expired_mapping_gets_new_public_port():
    clock = {"t": 0.0}
    nat = make_nat(NatSpec.cone(timeout=120.0), clock=lambda: clock["t"])
    pub1 = nat.translate_outbound("udp", INNER, REMOTE_A)
    clock["t"] = 500.0
    pub2 = nat.translate_outbound("udp", INNER, REMOTE_A)
    assert pub1.port != pub2.port


def test_lookup_public_eim_only():
    cone = make_nat(NatSpec.cone())
    cone.translate_outbound("udp", INNER, REMOTE_A)
    assert cone.lookup_public("udp", INNER) is not None
    sym = make_nat(NatSpec.symmetric())
    sym.translate_outbound("udp", INNER, REMOTE_A)
    assert sym.lookup_public("udp", INNER) is None


def test_expire_all_models_nat_reboot():
    nat = make_nat(NatSpec.cone())
    pub = nat.translate_outbound("udp", INNER, REMOTE_A)
    nat.expire_all()
    assert nat.translate_inbound("udp", pub.port, REMOTE_A) is None


def test_is_inside():
    nat = make_nat(NatSpec.cone())
    assert nat.is_inside("10.1.0.9")
    assert not nat.is_inside("10.10.0.9")


def test_firewall_policy():
    fw = FirewallPolicy(open_udp_ports=frozenset({14001}))
    assert fw.allows_inbound(14001)
    assert not fw.allows_inbound(22)
    assert FirewallPolicy().allows_inbound(12345)


class TestPortAllocation:
    """Regression: public ports must stay inside [20000, 65535] — long runs
    used to mint "ports" past 65535 (monotonic counter, no reclamation)."""

    def test_ports_wrap_within_valid_range(self):
        nat = make_nat(NatSpec.symmetric())
        nat._next_port = 65534
        ports = []
        for i in range(4):
            pub = nat.translate_outbound("udp", INNER,
                                         Endpoint("128.0.0.5", 9000 + i))
            ports.append(pub.port)
        assert all(20000 <= p <= 65535 for p in ports)
        assert len(set(ports)) == 4

    def test_wrapped_allocation_skips_held_ports(self):
        nat = make_nat(NatSpec.symmetric())
        nat._next_port = 65534
        nat.translate_outbound("udp", INNER, REMOTE_A)   # takes 65534
        nat.translate_outbound("udp", INNER, REMOTE_B)   # takes 65535
        nat._next_port = 65534  # force a second pass over held ports
        pub = nat.translate_outbound("udp", INNER, REMOTE_A2)
        assert pub.port == 20000  # skipped the two live mappings

    def test_wrapped_allocation_reclaims_expired_ports(self):
        t = {"now": 0.0}
        nat = make_nat(NatSpec.symmetric(), clock=lambda: t["now"])
        nat._next_port = 65535
        old = nat.translate_outbound("udp", INNER, REMOTE_A)
        assert old.port == 65535
        t["now"] = 1e4  # far beyond mapping_timeout: the holder is dead
        nat._next_port = 65535
        pub = nat.translate_outbound("udp", INNER, REMOTE_B)
        assert pub.port == 65535
        # the expired holder was garbage-collected, not leaked
        assert nat.translate_inbound("udp", 65535, REMOTE_A) is None

    def test_exhausted_port_space_raises(self):
        nat = make_nat(NatSpec.symmetric())
        nat.PORT_MIN = nat._next_port = 20000
        nat.PORT_MAX = 20002
        for i in range(3):
            nat.translate_outbound("udp", INNER,
                                   Endpoint("128.0.0.5", 9000 + i))
        with pytest.raises(RuntimeError):
            nat.translate_outbound("udp", INNER, Endpoint("128.0.0.5", 9100))
