"""Liveness layer: keep-alive pings, zombie detection, the hard timeout.

Crashed peers leave no close-notify; the only failure signals are (a) a
run of unanswered pings, (b) a ``PingReply`` whose ``known`` flag says the
peer holds no state for us (it restarted), and (c) the ``last_heard``
backstop when ping accounting itself was confused.  These tests pin each
signal down in isolation.
"""

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.table import ConnectionTable
from repro.fault import FaultSchedule
from tests.conftest import build_overlay


def _conn_pair(nodes):
    """Some (a, b) from the overlay that hold a connection to each other."""
    for a in nodes:
        for conn in a.table.all():
            b = next((n for n in nodes if n.addr == conn.peer_addr), None)
            if b is not None and b.table.get(a.addr) is not None:
                return a, b
    raise AssertionError("no connected pair in overlay")


def test_zombie_connections_resolved_via_known_flag(sim, internet):
    """A peer that crash-restarts at the same endpoint answers pings again
    but holds no connection state.  ``known=False`` must resolve every
    stale one-way link well before any ping ever times out — either the
    holder drops it (peer-forgot) or the restarted node has re-linked,
    making the link two-way again."""
    nodes, _ = build_overlay(sim, internet, 6)
    _a, b = _conn_pair(nodes)
    holders = [n for n in nodes if n is not b and n.table.get(b.addr)]
    assert holders
    # crash + instant restart: same host, same port, empty table
    b.stop()
    b.start([])
    assert all(b.table.get(n.addr) is None for n in holders)
    cfg = b.config
    # b answers every ping, so unanswered_pings never accumulates; only
    # the known=False path can clear or re-validate the zombies
    sim.run(until=sim.now + 2 * cfg.ping_interval + 5.0)
    for n in nodes:
        if n is not b and n.table.get(b.addr) is not None:
            assert b.table.get(n.addr) is not None  # no one-way links left
    drops = [d for _t, d in sim.tracer.get("conn.drop")
             if d.get("reason") == "peer-forgot"]
    assert drops  # the flag actually fired somewhere


def test_silent_crash_detected_by_ping_timeout(sim, internet):
    nodes, _ = build_overlay(sim, internet, 6)
    a, b = _conn_pair(nodes)
    b.stop()
    cfg = a.config
    budget = cfg.ping_interval * (cfg.ping_retries + 2) + 10.0
    sim.run(until=sim.now + budget)
    assert a.table.get(b.addr) is None


def test_liveness_timeout_backstop_fires_without_ping_accounting(sim,
                                                                 internet):
    """With retries effectively disabled, a blackout must still get the
    dead link cleared by the hard ``last_heard`` timeout."""
    config = BrunetConfig(ping_retries=10_000, liveness_timeout=40.0)
    nodes, _ = build_overlay(sim, internet, 6, config=config)
    a, b = _conn_pair(nodes)
    faults = FaultSchedule(sim, internet)
    faults.blackout(sim.now, 10_000.0, a.host, b.host)
    sim.run(until=sim.now + config.liveness_timeout + 2 * config.ping_interval)
    assert a.table.get(b.addr) is None
    reasons = {d.get("reason") for _t, d in sim.tracer.get("conn.drop")
               if d.get("node") == a.name}
    assert "liveness-timeout" in reasons
    assert "ping-timeout" not in reasons  # retries were out of the picture


def test_liveness_timeout_zero_disables_backstop(sim, internet):
    config = BrunetConfig(ping_retries=10_000, liveness_timeout=0.0)
    nodes, _ = build_overlay(sim, internet, 4, config=config)
    a, b = _conn_pair(nodes)
    faults = FaultSchedule(sim, internet)
    faults.blackout(sim.now, 10_000.0, a.host, b.host)
    sim.run(until=sim.now + 300.0)
    assert a.table.get(b.addr) is not None  # nothing may ever drop it


def test_healthy_links_never_dropped_by_liveness(sim, internet):
    nodes, _ = build_overlay(sim, internet, 6)
    before = {n.name: len(n.table.all()) for n in nodes}
    sim.run(until=sim.now + 400.0)
    reasons = {d.get("reason") for _t, d in sim.tracer.get("conn.drop")}
    assert not reasons & {"ping-timeout", "liveness-timeout", "peer-forgot"}
    for n in nodes:
        assert len(n.table.all()) >= before[n.name]


def test_connection_table_stale_selects_by_last_heard():
    table = ConnectionTable(random_address_static())
    fresh = Connection(random_address_static(1), None,
                       ConnectionType.STRUCTURED_NEAR, now=0.0)
    old = Connection(random_address_static(2), None,
                     ConnectionType.STRUCTURED_FAR, now=0.0)
    table.add(fresh)
    table.add(old)
    fresh.heard_from(95.0)
    old.heard_from(10.0)
    assert table.stale(now=100.0, timeout=30.0) == [old]
    assert table.stale(now=100.0, timeout=0.5) == [fresh, old] \
        or set(table.stale(now=100.0, timeout=0.5)) == {fresh, old}
    assert table.stale(now=100.0, timeout=1000.0) == []


def random_address_static(salt: int = 0):
    import numpy as np
    rng = np.random.default_rng(99 + salt)
    return random_address(rng)
