"""Size-accounting invariants for measured wire modes.

Reference mode keeps the paper constants (HEADER_BYTES on every
datagram); measured/codec modes charge the encoded length plus real
UDP/IP headers.  These tests pin the encap overhead for a tunnelled IP
packet and the Datagram framing override that makes the split possible.
"""

import pytest

from repro.brunet.address import BrunetAddress
from repro.brunet.messages import IpEncap, RoutedPacket
from repro.ipop.ippacket import VirtualIpPacket
from repro.obs.spans import TraceRef
from repro.phys.endpoints import Endpoint
from repro.phys.packet import Datagram, HEADER_BYTES
from repro.wire import UDP_IP_OVERHEAD, encap_overhead, encoded_size

A = Endpoint("10.0.0.1", 14001)
B = Endpoint("10.0.0.2", 14001)


def _tunnelled(trace=None, vip_size=84):
    addr = BrunetAddress(0)
    vip = VirtualIpPacket("10.128.0.2", "10.128.0.3", "icmp", 0, None,
                          vip_size)
    return RoutedPacket(src=addr, dest=addr, payload=IpEncap(vip, vip_size),
                        size=vip_size, exact=True, trace=trace)


def test_encap_overhead_pinned():
    # RoutedPacket + IpEncap + VirtualIpPacket framing (101 B for the
    # minimal packet above) + IPv4/UDP (28 B).  A change here is a wire
    # format change and must bump WIRE_VERSION.
    assert encap_overhead() == 129
    assert encap_overhead() == encoded_size(_tunnelled()) + UDP_IP_OVERHEAD


def test_traced_packet_pays_exactly_the_trace_ref():
    untraced = encoded_size(_tunnelled())
    traced = encoded_size(_tunnelled(trace=TraceRef(123, 456)))
    # two u64 span ids — ids, not object references (the presence byte
    # is paid either way)
    assert traced - untraced == 8 + 8


def test_payload_bytes_do_not_change_framing_overhead():
    small, big = _tunnelled(vip_size=10), _tunnelled(vip_size=60000)
    assert encoded_size(small) == encoded_size(big)


def test_udp_ip_overhead_is_real_headers_not_paper_constant():
    assert UDP_IP_OVERHEAD == 20 + 8  # IPv4 + UDP
    assert UDP_IP_OVERHEAD != HEADER_BYTES


def test_datagram_default_framing_is_reference_constant():
    d = Datagram(A, B, payload="x", size=100)
    assert d.size == HEADER_BYTES + 100


def test_datagram_header_override_for_measured_modes():
    d = Datagram(A, B, payload="x", size=100, header=UDP_IP_OVERHEAD)
    assert d.size == UDP_IP_OVERHEAD + 100
    # encoded frames carry their own overlay framing: header=0 must also
    # be honoured (not confused with "use the default")
    d0 = Datagram(A, B, payload="x", size=100, header=0)
    assert d0.size == 100


def test_encap_overhead_is_cached_and_stable():
    assert encap_overhead() is not None
    assert encap_overhead() == encap_overhead()


def test_encoded_size_equals_real_encode_over_fuzz_corpus():
    """The arithmetic sizer must agree with an actual encode, byte for
    byte, across every message type and a large randomized corpus —
    otherwise bandwidth accounting in the simulator silently drifts from
    what the codec-mode transport would really put on the wire."""
    from repro.wire import encode
    from tests.wire.test_codec_roundtrip import _sample_messages

    for msg in _sample_messages(seed=17, per_type=25):
        assert encoded_size(msg) == len(encode(msg)), msg
