"""Pluggable transports: the same protocol code over sim or real sockets.

A :class:`~repro.transport.base.Transport` owns one node's datagram
endpoint.  :class:`~repro.transport.sim.SimTransport` wraps the simulated
internet (today's ``Internet.send``/``Host.bind_udp`` delivery);
:class:`~repro.transport.udp.UdpTransport` binds a real asyncio UDP
socket and frames every message through :mod:`repro.wire`.  ``BrunetNode``
talks only to the transport interface, so the identical node/IPOP logic
runs in either world — the sim-vs-live equivalence argument of
DESIGN.md §12.

:class:`~repro.transport.runtime.RealtimeKernel` supplies the scheduler/
RNG/observability surface protocol code expects from a ``Simulator``, but
backed by the asyncio event loop and the wall clock.
"""

from repro.transport.base import Transport
from repro.transport.runtime import RealtimeKernel
from repro.transport.sim import SimTransport
from repro.transport.udp import UdpTransport

__all__ = ["Transport", "SimTransport", "UdpTransport", "RealtimeKernel"]
