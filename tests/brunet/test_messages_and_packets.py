"""Message/token plumbing and datagram path accounting."""

from repro.brunet.messages import (
    CtmRequest,
    LinkRequest,
    RoutedPacket,
    next_token,
)
from repro.phys.endpoints import Endpoint
from repro.phys.packet import HEADER_BYTES, Datagram


def test_tokens_monotonic_and_unique():
    tokens = [next_token() for _ in range(100)]
    assert tokens == sorted(tokens)
    assert len(set(tokens)) == 100


def test_datagram_size_includes_header():
    d = Datagram(Endpoint("1.1.1.1", 1), Endpoint("2.2.2.2", 2), "x",
                 size=100)
    assert d.size == 100 + HEADER_BYTES
    d2 = Datagram(Endpoint("1.1.1.1", 1), Endpoint("2.2.2.2", 2), "x")
    assert d2.size == HEADER_BYTES


def test_datagram_records_traversal_path():
    d = Datagram(Endpoint("10.0.0.2", 1), Endpoint("2.2.2.2", 2), "x", 10)
    assert d.orig_src == Endpoint("10.0.0.2", 1)
    d.hop("snat:campus")
    d.src = Endpoint("200.0.0.1", 20000)
    d.hop("core")
    assert d.path == ["snat:campus", "core"]
    assert d.orig_src.ip == "10.0.0.2"  # original preserved for tests


def test_routed_packet_defaults():
    pkt = RoutedPacket(src=1, dest=2, payload="x", size=10)
    assert not pkt.exact
    assert not pkt.exclude_dest_link
    assert pkt.approach is None
    assert pkt.hops == 0 and pkt.via == []


def test_ctm_request_join_fields():
    msg = CtmRequest(next_token(), 1, [], "structured.near",
                     reply_via=42, fanout=1)
    assert msg.reply_via == 42 and msg.fanout == 1
    plain = CtmRequest(next_token(), 1, [], "shortcut")
    assert plain.reply_via is None and plain.fanout == 0


def test_link_request_carries_uri_list_snapshot():
    from repro.brunet.uri import Uri
    uris = [Uri.udp("1.1.1.1", 1)]
    msg = LinkRequest(next_token(), 5, uris, "leaf")
    assert msg.sender_uris == uris
