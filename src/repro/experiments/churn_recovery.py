"""Churn recovery: kill a fraction of the overlay, time the self-repair.

The paper's §V-E argues WOW "self-organizes": nodes fail and the ring
re-converges without operator action.  This experiment quantifies that —
an overlay of IPOP nodes (each owning a virtual IP) is warmed up to full
all-pairs virtual-IP routability, a :class:`~repro.fault.FaultSchedule`
then crashes ``kill_fraction`` of the nodes simultaneously (no
close-notify: true crashes, detected only by the liveness layer), and the
surviving nodes are sampled until both

* **ring consistency** — every survivor is connected to its true ring
  successor, and
* **all-pairs virtual-IP routability** — greedy routing finds a live path
  for every ordered pair of survivors' virtual IPs

hold again.  Recovery time is reported for each.  With a fixed seed the
whole run — fault timing, repair traffic, recovery curve — is
deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.brunet.config import BrunetConfig
from repro.brunet.node import BrunetNode
from repro.brunet.routing import trace_route
from repro.brunet.uri import Uri
from repro.experiments.common import print_table
from repro.experiments.plotting import ascii_plot, export_series_csv
from repro.fault import FaultSchedule
from repro.ipop.ippacket import IcmpEcho
from repro.ipop.mapping import addr_for_ip
from repro.ipop.router import IpopRouter
from repro.phys.network import Internet
from repro.phys.topology import Site
from repro.sim.engine import Simulator

#: public sites the overlay is spread over (round-robin) so repair traffic
#: crosses WAN latencies, not just a LAN
N_SITES = 4


@dataclass
class ChurnResult:
    """Outcome of one churn-recovery run."""

    seed: int
    n_nodes: int
    n_killed: int
    t_kill: float
    #: seconds from the kill until ring consistency returned (None = never)
    recovery_ring: Optional[float]
    #: seconds from the kill until all-pairs routability returned
    recovery_routes: Optional[float]
    #: (seconds since kill, routable pair fraction, ring consistent)
    series: list[tuple[float, float, bool]] = field(default_factory=list)
    fault_log: list = field(default_factory=list)
    #: export manifest when the run was observed (``obs_dir`` given)
    obs_manifest: Optional[dict] = None
    #: invariant-audit violations (``audit=True``); None = audit off
    violations: Optional[list] = None
    #: kernel self-profile summary (``profile_kernel=True``); None = off
    profile: Optional[dict] = None

    @property
    def recovered(self) -> bool:
        return (self.recovery_ring is not None
                and self.recovery_routes is not None)


def _build_overlay(sim: Simulator, n_nodes: int,
                   config: BrunetConfig) -> tuple[Internet, list[BrunetNode]]:
    """``n_nodes`` IPOP nodes across ``N_SITES`` public sites; node 0 is
    the bootstrap seed.  Virtual IP of node *i* is ``172.16.9.(i+2)``."""
    internet = Internet(sim)
    sites = [Site(internet, f"pub{i}") for i in range(N_SITES)]
    nodes: list[BrunetNode] = []
    routers: list[IpopRouter] = []
    bootstrap: list[Uri] = []
    for i in range(n_nodes):
        virtual_ip = f"172.16.9.{i + 2}"
        host = sites[i % N_SITES].add_host(f"ch{i}")
        node = BrunetNode(sim, host, addr_for_ip(virtual_ip), config,
                          name=f"churn{i}")
        node.start(list(bootstrap))
        routers.append(IpopRouter(node, virtual_ip))
        if not bootstrap:
            bootstrap.append(Uri.udp(host.ip, node.port))
        nodes.append(node)
        sim.run(until=sim.now + 3.0)  # staggered joins
    return internet, nodes, routers


def _ring_consistent(live: list[BrunetNode]) -> bool:
    ordered = sorted(live, key=lambda n: int(n.addr))
    return all(
        ordered[i].table.get(ordered[(i + 1) % len(ordered)].addr) is not None
        for i in range(len(ordered)))


def _routable_fraction(live: list[BrunetNode]) -> float:
    registry = {n.addr: n for n in live}
    total = ok = 0
    for a in live:
        for b in live:
            if a is b:
                continue
            total += 1
            if trace_route(a, b.addr, registry.get) is not None:
                ok += 1
    return ok / total if total else 1.0


def _probe_multi_hop(sim: Simulator, nodes: list[BrunetNode],
                     routers: list[IpopRouter]) -> None:
    """Ping across the first ordered pair whose greedy route is ≥ 2 hops,
    so the span export contains a genuinely multi-hop virtual-IP trace."""
    registry = {n.addr: n for n in nodes if n.active}
    for i, a in enumerate(nodes):
        if not a.active:
            continue
        for j, b in enumerate(nodes):
            if a is b or not b.active:
                continue
            path = trace_route(a, b.addr, registry.get)
            if path is None or len(path) < 3:  # < 2 overlay hops
                continue
            echo = IcmpEcho(seq=1, is_reply=False, sent_at=sim.now,
                            data_size=64)
            routers[i].send_ip(routers[j].virtual_ip, "icmp", 0, echo, 72)
            sim.run(until=sim.now + 5.0)  # let echo + reply land
            return


def run(seed: int = 0, n_nodes: int = 20, kill_fraction: float = 0.25,
        settle: float = 400.0, horizon: float = 600.0,
        sample_every: float = 5.0,
        obs_dir: Optional[str] = None,
        audit: bool = False,
        profile_kernel: bool = False) -> ChurnResult:
    """One deterministic churn-recovery measurement.

    ``obs_dir`` — when given, causal span tracing and the flight recorder
    are enabled and the full observability bundle (metrics, spans, events,
    manifest) is exported there at the end of the run; an address-ring
    sector rollup over the live population is registered too, so the
    bundle carries ``ring.sector.*`` gauges.

    ``audit`` — run the invariant auditor inline (read-only, so the run's
    trajectory is unchanged); violations land in
    :attr:`ChurnResult.violations` and, with ``obs_dir``, in the bundle's
    ``violations.jsonl``.

    ``profile_kernel`` — attach the kernel self-profiler (also
    read-only); the summary lands in :attr:`ChurnResult.profile` and,
    with ``obs_dir``, ``profile.json`` + ``profile.folded`` are written
    beside the bundle.
    """
    sim = Simulator(seed=seed, trace=False)
    if profile_kernel:
        sim.obs.enable_profiler()
    if obs_dir is not None:
        os.makedirs(obs_dir, exist_ok=True)
        sim.obs.enable_spans()
        sim.obs.enable_recorder(
            capacity=256, spill_path=os.path.join(obs_dir, "events.jsonl"))
    internet, nodes, routers = _build_overlay(sim, n_nodes, BrunetConfig())
    if obs_dir is not None:
        sim.obs.enable_rollup(lambda: [n for n in nodes if n.active],
                              sectors=8)
    auditor = None
    if audit:
        from repro.check import Auditor
        auditor = Auditor(sim, lambda: nodes, internet=internet,
                          name="churn").start()

    # warm up to a fully routable overlay before injecting anything
    deadline = sim.now + settle
    while sim.now < deadline:
        live = [n for n in nodes if n.active]
        if _ring_consistent(live) and _routable_fraction(live) == 1.0:
            break
        sim.run(until=sim.now + 10.0)
    if obs_dir is not None:
        _probe_multi_hop(sim, nodes, routers)

    # crash the victims (deterministic choice from the master seed)
    n_killed = max(1, round(n_nodes * kill_fraction))
    rng = sim.rng.stream("churn.victims")
    victims = [nodes[i] for i in
               sorted(rng.choice(n_nodes, size=n_killed, replace=False))]
    faults = FaultSchedule(sim, internet, name="churn")
    t_kill = sim.now + 1.0
    for victim in victims:
        faults.crash_node(t_kill, victim)

    survivors = [n for n in nodes if n not in victims]
    recovery_ring: Optional[float] = None
    recovery_routes: Optional[float] = None
    series: list[tuple[float, float, bool]] = []
    sim.run(until=t_kill)
    while sim.now - t_kill < horizon:
        sim.run(until=sim.now + sample_every)
        elapsed = sim.now - t_kill
        ring_ok = _ring_consistent(survivors)
        frac = _routable_fraction(survivors)
        series.append((elapsed, frac, ring_ok))
        if ring_ok and recovery_ring is None:
            recovery_ring = elapsed
        if frac == 1.0 and recovery_routes is None:
            recovery_routes = elapsed
        if recovery_ring is not None and recovery_routes is not None:
            break
    violations = auditor.finish() if auditor is not None else None
    manifest = (sim.obs.export(obs_dir, seed=seed)
                if obs_dir is not None else None)
    profile = (sim.obs.profiler.summary()
               if sim.obs.profiler is not None else None)
    return ChurnResult(seed=seed, n_nodes=n_nodes, n_killed=n_killed,
                       t_kill=t_kill, recovery_ring=recovery_ring,
                       recovery_routes=recovery_routes, series=series,
                       fault_log=list(faults.fired),
                       obs_manifest=manifest, violations=violations,
                       profile=profile)


def report(result: ChurnResult, csv_dir: Optional[str] = None) -> None:
    """Render the recovery table, the routability curve and optional CSV."""
    fmt = lambda v: "never" if v is None else f"{v:.0f} s"
    print_table(
        "Churn recovery (simultaneous node crashes)",
        ["nodes", "killed", "ring consistent after", "all-pairs routable after"],
        [[result.n_nodes, result.n_killed, fmt(result.recovery_ring),
          fmt(result.recovery_routes)]])
    xs = [t for t, _f, _r in result.series]
    ys = [100.0 * f for _t, f, _r in result.series]
    print()
    print(ascii_plot({"routable pairs %": (xs, ys)},
                     title=(f"Self-repair after killing {result.n_killed}/"
                            f"{result.n_nodes} nodes (seed {result.seed})"),
                     xlabel="seconds since crash"))
    if csv_dir:
        path = export_series_csv(f"{csv_dir}/churn_recovery.csv",
                                 {"routable_fraction": (xs, ys)})
        print(f"[csv] {path}")
    if result.obs_manifest:
        traces = result.obs_manifest.get("traces", [])
        ip = [t["trace"] for t in traces if t["kind"] == "ip"]
        ctm = [t["trace"] for t in traces if t["kind"] == "ctm"]
        print(f"[obs] {len(traces)} traces exported "
              f"({len(ip)} ip, {len(ctm)} ctm); inspect with e.g. "
              f"python -m repro.obs.inspect <dir>"
              + (f" --trace {ip[0]}" if ip else ""))


def main(seed: int = 0, n_nodes: int = 20,
         kill_fraction: float = 0.25) -> ChurnResult:
    result = run(seed=seed, n_nodes=n_nodes, kill_fraction=kill_fraction)
    report(result)
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
