"""Discovery unit pieces that need no testbed."""

import pytest

from repro.middleware.discovery import FAST_CPU, SLOW_CPU, ResourceAd


@pytest.mark.parametrize("speed,expected", [
    (1.33, "cpu:fast"),
    (FAST_CPU, "cpu:fast"),
    (1.0, "cpu:standard"),
    (SLOW_CPU, "cpu:slow"),
    (0.49, "cpu:slow"),
])
def test_cpu_class_boundaries(speed, expected):
    ad = ResourceAd("n", "ip", speed, 1, "ufl")
    assert expected in ad.capability_keys()


def test_every_ad_carries_site_and_pool_keys():
    ad = ResourceAd("n", "ip", 1.0, 0, "vims")
    keys = ad.capability_keys()
    assert "site:vims" in keys
    assert "workers:any" in keys


def test_slots_key_only_when_free():
    busy = ResourceAd("n", "ip", 1.0, 0, "ufl")
    free = ResourceAd("n", "ip", 1.0, 2, "ufl")
    assert "slots:free" not in busy.capability_keys()
    assert "slots:free" in free.capability_keys()
