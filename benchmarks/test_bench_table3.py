"""Benchmark + regeneration of Table III (fastDNAml-PVM, reduced taxa).

Runs the full-ratio overlay (118 PlanetLab routers : 33 VMs — the
no-shortcut penalty depends on routes crossing loaded PlanetLab nodes)
with a reduced taxa count.
"""

from benchmarks.conftest import run_once
from repro.experiments import table3_fastdnaml


def test_table3_fastdnaml(benchmark):
    rows = run_once(benchmark, table3_fastdnaml.run, seed=4, scale=1.0,
                    taxa=28)
    table3_fastdnaml.report(rows)
    by = {r.config: r for r in rows}
    # node034 is half the speed of node002 (paper: 45191 s vs 22272 s)
    ratio = by["sequential node034"].execution_time / \
        by["sequential node002"].execution_time
    assert 1.9 <= ratio <= 2.15
    # paper ordering: 9.1x < 11.0x < 13.6x.  At reduced taxa the 15-node
    # and 30-node-no-shortcut runs sit close together (smaller rounds →
    # relatively heavier synchronisation for 30 workers), so allow a
    # small tie margin; the 50-taxa run in results/table3_full.txt shows
    # the clean ordering.
    assert by["15 nodes, shortcuts"].speedup \
        < by["30 nodes, no shortcuts"].speedup * 1.05
    assert by["30 nodes, no shortcuts"].speedup \
        < by["30 nodes, shortcuts"].speedup
    # shortcuts buy a measurable fraction of the paper's 24% at this scale
    gain = by["30 nodes, no shortcuts"].execution_time / \
        by["30 nodes, shortcuts"].execution_time
    assert gain >= 1.04
