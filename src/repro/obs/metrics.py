"""Labeled metrics: counters, gauges and log-bucketed histograms.

A :class:`MetricsRegistry` hands out *child* instruments — one per
``(name, labels)`` pair — so hot paths pay only an attribute lookup and an
integer add per event.  Instrument names are dotted, layer-prefixed
namespaces (``brunet.route.hops``, ``linking.attempts``,
``nat.mappings_live``, ``ipop.encap_bytes``, ``fault.injected``); labels
carry the per-node / per-reason dimension so one export line exists per
series.

Cheap-by-construction rules:

* child instruments are resolved **once** (usually in a constructor) and
  cached on the instrumented object — no per-event dict hashing;
* a disabled registry returns a shared no-op instrument, so call sites
  never need their own ``if``;
* anything that is already counted elsewhere (``node.stats``,
  ``Internet.drops``, live NAT mappings) is pulled in lazily at export
  time through *collector callbacks* and callback gauges — zero hot-path
  cost.

Exports (:meth:`MetricsRegistry.export_jsonl` /
:meth:`~MetricsRegistry.export_csv`) are sorted by ``(name, labels)`` and
contain only simulation-derived values, so a fixed-seed run produces
byte-identical files.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Iterable, Optional

LabelItems = tuple[tuple[str, str], ...]


class NullInstrument:
    """Shared no-op stand-in returned by a disabled registry."""

    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass


NULL = NullInstrument()


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (default 1)."""
        self.value += n

    def row(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def row(self) -> dict:
        return {"value": self.value}


class CallbackGauge:
    """Gauge whose value is a function sampled at export time."""

    kind = "gauge"
    __slots__ = ("name", "labels", "fn")

    def __init__(self, name: str, labels: LabelItems,
                 fn: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.fn = fn

    @property
    def value(self) -> float:
        return self.fn()

    def row(self) -> dict:
        return {"value": self.fn()}


class Histogram:
    """Log₂-bucketed histogram: O(1) observe, ~60 buckets over any range.

    An observation ``v > 0`` lands in the bucket whose upper bound is the
    smallest power of two ≥ ``v`` (``frexp`` exponent); non-positive
    values land in the dedicated ``le=0`` bucket.  Bucket math never
    allocates, so histograms are safe on per-packet paths.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "count", "total")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.buckets: dict[int, int] = {}  # exponent -> count; -inf as None
        self.count = 0
        self.total: float = 0.0

    def observe(self, v: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += v
        exp = math.frexp(v)[1] if v > 0 else -1024  # le=0 sentinel
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @staticmethod
    def bound(exp: int) -> float:
        """Upper bound of the bucket with exponent ``exp``."""
        return 0.0 if exp == -1024 else float(2.0 ** exp)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (upper bucket bound), NaN when empty."""
        if not self.count:
            return float("nan")
        need = q * self.count
        seen = 0
        for exp in sorted(self.buckets):
            seen += self.buckets[exp]
            if seen >= need:
                return self.bound(exp)
        return self.bound(max(self.buckets))

    def row(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {f"le={self.bound(e):g}": n
                        for e, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Factory and store for labeled instruments.

    ``enabled=False`` turns every factory into a no-op-instrument source,
    letting a whole simulation opt out without touching call sites.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[tuple[str, str, LabelItems], Any] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- instrument factories -----------------------------------------
    def _get(self, cls, name: str, labels: dict) -> Any:
        items: LabelItems = tuple(sorted(labels.items()))
        key = (cls.kind, name, items)
        inst = self._instruments.get(key)
        if inst is None or type(inst) is not cls:
            inst = cls(name, items)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter child for ``(name, labels)`` (created on demand)."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge child for ``(name, labels)``."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram child for ``(name, labels)``."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._get(Histogram, name, labels)

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 **labels: str) -> None:
        """Register a gauge computed by ``fn()`` at export time."""
        if not self.enabled:
            return
        items: LabelItems = tuple(sorted(labels.items()))
        self._instruments[("gauge", name, items)] = CallbackGauge(
            name, items, fn)

    def add_collector(self,
                      fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback that fills in metrics right before export
        (for state already counted elsewhere — zero hot-path cost)."""
        if self.enabled:
            self._collectors.append(fn)

    # -- export --------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """All series as sorted, JSON-ready rows."""
        for fn in self._collectors:
            fn(self)
        rows = []
        for (kind, name, items), inst in self._instruments.items():
            rows.append({"name": name, "type": kind,
                         "labels": dict(items), **inst.row()})
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows

    def find(self, name: str, **labels: str) -> Optional[Any]:
        """Look up an existing instrument without creating it."""
        items: LabelItems = tuple(sorted(labels.items()))
        for kind in ("counter", "gauge", "histogram"):
            inst = self._instruments.get((kind, name, items))
            if inst is not None:
                return inst
        return None

    def export_jsonl(self, path: str) -> str:
        """Write one JSON object per series; returns ``path``."""
        with open(path, "w") as fh:
            for row in self.snapshot():
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return path

    def export_csv(self, path: str) -> str:
        """Write ``name,labels,type,value,count,sum`` rows."""
        with open(path, "w") as fh:
            fh.write("name,labels,type,value,count,sum\n")
            for row in self.snapshot():
                labels = ";".join(f"{k}={v}" for k, v in
                                  sorted(row["labels"].items()))
                value = row.get("value", "")
                fh.write(f"{row['name']},{labels},{row['type']},"
                         f"{value},{row.get('count', '')},"
                         f"{row.get('sum', '')}\n")
        return path


def merge_rows(rows: Iterable[dict], name: str) -> float:
    """Sum the ``value`` of every row called ``name`` (export analysis)."""
    return sum(r.get("value", 0) for r in rows if r["name"] == name)
