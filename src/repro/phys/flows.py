"""Max-min fair fluid-flow model for bulk data transfers.

Simulating a 720 MB SCP transfer packet-by-packet would need ~10⁶ events;
instead, bulk transfers are *flows* that progress continuously at a rate
determined by progressive filling (max-min fairness) over the capacity
resources along their path.  Rates are recomputed whenever the flow set or
any path changes; between recomputations progress is linear, so it can be
integrated exactly — and lazily: each flow carries ``(_base, _sync_t)``
and materializes ``transferred`` on read, so a mutation only touches the
flows whose rates actually change, never the whole population.

Per-flow rate caps (e.g. a TCP window/RTT bound) are modelled as a private
:class:`Resource` appended to the path — this keeps the fairness computation
uniform and correct.

Rate recomputation is incremental per affected *bottleneck*: a mutation
(flow add/remove/re-path, pause/resume, capacity change) marks the touched
resources dirty, and the solver water-fills only the flows crossing those
resources.  Where a re-rated flow also crosses a resource outside the dirty
set, that resource enters the fill with its residual capacity (capacity
minus the load of its untouched flows) and the untouched flows are checked
afterwards against the max-min optimality certificate — a flow is *happy*
iff some resource on its path is saturated and carries no faster flow.  An
unhappy flow pulls its whole path into scope and the fill repeats; the
fixpoint expands at most to the connected component, but in the common case
(disjoint bottlenecks, fig8-style job churn) it never leaves the dirty
links.  Saturation state (load, max rate) is cached per resource and
invalidated only for resources whose flow set or rates changed.

Mutations made inside an event are coalesced: the first one schedules a
single flush at the current timestamp with a priority below every ordinary
event, so a burst of changes pays for one recomputation and every event at
a later timestamp still observes fresh rates.  Mutations made outside event
context recompute synchronously, so direct driving of the manager (tests,
setup code) keeps eager semantics.

Completions are driven by a lazily-invalidated min-heap of estimated
finish times (one entry per rate assignment, stale entries skipped by
generation counter) instead of an O(flows) scan per flush.

The overlay layer maps an overlay route onto resources: each traversed
IPOP router contributes its user-level forwarding capacity and each WAN
site-pair contributes a path-capacity resource (see
:mod:`repro.ipop.router`).  Re-pathing a live flow (a shortcut forming, a
migration) is ``flow.set_path(...)`` — exactly what Figs. 6–8 exercise.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event, Simulator

_EPS = 1e-9

#: flushes run before every ordinary event at the same timestamp, so any
#: event at time t observes rates that reflect all mutations made before t
_FLUSH_PRIORITY = -(1 << 30)


class Resource:
    """A capacity-limited stage (link, router CPU) shared by flows."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float):
        if capacity < 0:
            raise ValueError(f"negative capacity for {name}")
        self.name = name
        self.capacity = capacity
        self.flows: set["Flow"] = set()

    def set_capacity(self, capacity: float, manager: "FlowManager") -> None:
        """Change capacity and recompute rates of affected flows.

        A resource carrying no flows cannot affect any rate, so the change
        is recorded without triggering a recomputation (the next flow
        admitted over it recomputes anyway).
        """
        self.capacity = capacity
        if not self.flows:
            return
        manager.request_recompute((self,))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Resource {self.name} cap={self.capacity:.0f}B/s n={len(self.flows)}>"


class Flow:
    """One bulk transfer.

    ``done`` is a latched signal fired with the completion time.  ``paused``
    flows hold their progress at rate 0 (used across migration outages).

    Progress is integrated lazily: ``_base`` bytes were transferred as of
    ``_sync_t``, and the current rate extends that linearly, so
    :attr:`transferred` is exact at any read without a manager pass.
    ``progress_log`` gains a point at every rate transition — progress is
    linear in between, so interpolation over the log stays exact.
    """

    def __init__(self, manager: "FlowManager", name: str, size: float,
                 path: Iterable[Resource], rate_cap: Optional[float] = None,
                 on_complete: Optional[Callable[["Flow"], None]] = None):
        if size <= 0:
            raise ValueError("flow size must be positive")
        self.manager = manager
        self.name = name
        self.size = float(size)
        self.rate = 0.0
        self.paused = False
        self.completed = False
        self.start_time = manager.sim.now
        self.finish_time: Optional[float] = None
        self.on_complete = on_complete
        self._done: Optional[Signal] = None
        self.progress_log: list[tuple[float, float]] = [(self.start_time, 0.0)]
        self._base = 0.0          # bytes transferred as of _sync_t
        self._sync_t = self.start_time
        self._gen = 0             # bumped on every rate assignment
        self._cap_resource: Optional[Resource] = None
        self.path: list[Resource] = []
        self._set_path_internal(path, rate_cap)
        manager.add(self)

    @property
    def done(self) -> Signal:
        """Latched completion signal (created on first use — most flows in
        large churn scenarios are cancelled without anyone awaiting them)."""
        if self._done is None:
            self._done = Signal(self.manager.sim, f"flow.{self.name}.done",
                                latch=True)
        return self._done

    # -- progress ----------------------------------------------------------
    @property
    def transferred(self) -> float:
        """Bytes transferred so far (exact, lazily integrated)."""
        if self.rate > 0.0 and not self.completed:
            now = self.manager.sim.now
            if now > self._sync_t:
                return min(self.size,
                           self._base + self.rate * (now - self._sync_t))
        return self._base

    def _sync(self, now: float) -> None:
        """Materialize linear progress up to ``now`` at the current rate.

        Called before every rate change so ``progress_log`` records the
        piecewise-linear trajectory exactly at its breakpoints.
        """
        if self.rate > 0.0 and now > self._sync_t and not self.completed:
            self._base = min(self.size,
                             self._base + self.rate * (now - self._sync_t))
            self._sync_t = now
            log = self.progress_log
            if log[-1][0] != now or log[-1][1] != self._base:
                log.append((now, self._base))
        else:
            self._sync_t = now

    # -- path management --------------------------------------------------
    def _set_path_internal(self, path: Iterable[Resource],
                           rate_cap: Optional[float]) -> None:
        for r in self.path:
            r.flows.discard(self)
        self.path = list(path)
        if rate_cap is not None:
            self._cap_resource = Resource(f"cap.{self.name}", rate_cap)
            self.path.append(self._cap_resource)
        elif self._cap_resource is not None:
            self.path.append(self._cap_resource)
        for r in self.path:
            r.flows.add(self)

    def set_path(self, path: Iterable[Resource],
                 rate_cap: Optional[float] = None) -> None:
        """Re-route the flow (keeps transferred bytes)."""
        if self.completed or self not in self.manager.flows:
            # completed or cancelled: re-pathing would re-register the
            # flow on the resources and let it steal live flows' share
            return
        old_path = list(self.path)
        if rate_cap is not None and self._cap_resource is not None:
            self._cap_resource.capacity = rate_cap
            rate_cap = None  # reuse the existing cap resource
        self._set_path_internal(path, rate_cap)
        self.manager.request_recompute(old_path + self.path)

    def set_rate_cap(self, rate_cap: float) -> None:
        """Install/update a per-flow rate ceiling (e.g. window/RTT)."""
        if self.completed or self not in self.manager.flows:
            return
        if self._cap_resource is None:
            self._set_path_internal(self.path, rate_cap)
            self.manager.request_recompute(self.path)
        else:
            self._cap_resource.set_capacity(rate_cap, self.manager)

    # -- control ----------------------------------------------------------
    def _log_point(self) -> None:
        now = self.manager.sim.now
        if self.progress_log[-1] != (now, self._base):
            self.progress_log.append((now, self._base))

    def pause(self) -> None:
        """Freeze progress at rate 0 (e.g. across a migration outage)."""
        if (not self.paused and not self.completed
                and self in self.manager.flows):
            self._sync(self.manager.sim.now)
            self.paused = True
            self._log_point()
            self.manager.request_recompute(self.path)

    def resume(self) -> None:
        """Undo :meth:`pause`; rates are recomputed immediately."""
        if self.paused and not self.completed \
                and self in self.manager.flows:
            self.paused = False
            self._log_point()
            self.manager.request_recompute(self.path)

    def cancel(self) -> None:
        """Abort the transfer; ``done`` never fires."""
        if not self.completed:
            self.manager.remove(self)

    @property
    def remaining(self) -> float:
        """Bytes still to transfer."""
        return max(0.0, self.size - self.transferred)

    def mean_rate(self, t0: Optional[float] = None,
                  t1: Optional[float] = None) -> float:
        """Average achieved rate over [t0, t1] from the progress log."""
        log = self.progress_log
        t0 = log[0][0] if t0 is None else t0
        if t1 is None:
            t1 = (self.manager.sim.now
                  if self.rate > 0.0 and not self.completed else log[-1][0])
        if t1 <= t0:
            return 0.0

        def bytes_at(t: float) -> float:
            if t >= log[-1][0]:
                # past the last breakpoint: extend the live linear segment
                if self.rate > 0.0 and not self.completed and t >= self._sync_t:
                    return min(self.size,
                               self._base + self.rate * (t - self._sync_t))
                return log[-1][1]
            prev_t, prev_b = log[0]
            for lt, lb in log:
                if lt > t:
                    if lt == prev_t:
                        return prev_b
                    frac = (t - prev_t) / (lt - prev_t)
                    return prev_b + frac * (lb - prev_b)
                prev_t, prev_b = lt, lb
            return log[-1][1]

        return (bytes_at(t1) - bytes_at(t0)) / (t1 - t0)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Flow {self.name} {self.transferred:.0f}/{self.size:.0f}B "
                f"rate={self.rate:.0f}B/s>")


class FlowManager:
    """Owns all live flows; integrates progress and recomputes fair rates."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.flows: set[Flow] = set()
        self._next_event: Optional["Event"] = None
        self._next_at = math.inf
        self.completed_count = 0
        self._dirty: set[Resource] = set()
        self._full = False
        self._flushing = False
        self._flush_event: Optional["Event"] = None
        #: completion heap: (est_finish, seq, flow_gen, flow); entries go
        #: stale when the flow's rate changes (gen mismatch) and are
        #: skipped lazily instead of re-scanning every flow per flush
        self._heap: list[tuple[float, int, int, Flow]] = []
        self._seq = 0
        #: per-resource saturation state (load, max flow rate), invalidated
        #: for exactly the resources a recomputation touches and refilled
        #: on demand by the optimality check
        self._res_state: dict[Resource, tuple[float, float]] = {}
        #: observability: how many recomputations ran, how many of those
        #: were scoped rather than global, and how many water-filling
        #: passes the bottleneck-scoped fixpoint performed in total
        self.full_recomputes = 0
        self.scoped_recomputes = 0
        self.bottleneck_recomputes = 0

    # -- flow set ----------------------------------------------------------
    def add(self, flow: Flow) -> None:
        """Admit a flow and rebalance rates."""
        self.flows.add(flow)
        self.request_recompute(flow.path)

    def remove(self, flow: Flow) -> None:
        """Withdraw a flow (without completing it) and rebalance."""
        flow._sync(self.sim.now)
        self.flows.discard(flow)
        flow.rate = 0.0
        flow._gen += 1
        state = self._res_state
        for r in flow.path:
            r.flows.discard(flow)
            if state:
                state.pop(r, None)
        self.request_recompute(flow.path)

    # -- integration --------------------------------------------------------
    def advance(self) -> None:
        """Materialize every flow's progress and complete the due ones.

        Rate reads and :attr:`Flow.transferred` are exact without calling
        this; it exists for callers that want completions detected at a
        specific instant rather than at the scheduled completion event.
        """
        now = self.sim.now
        finished: list[Flow] = []
        for f in self.flows:
            if f.rate > 0.0:
                f._sync(now)
                if f.size - f._base <= _EPS:
                    finished.append(f)
        for f in finished:
            self._complete(f)

    def _complete(self, flow: Flow) -> None:
        flow._sync(self.sim.now)
        flow.completed = True
        flow.finish_time = self.sim.now
        flow.rate = 0.0
        flow._gen += 1
        self.flows.discard(flow)
        self._dirty.update(flow.path)  # released capacity rebalances peers
        for r in flow.path:
            r.flows.discard(flow)
            self._res_state.pop(r, None)
        self.completed_count += 1
        self.sim.trace("flow.complete", name=flow.name,
                       duration=flow.finish_time - flow.start_time,
                       size=flow.size)
        if flow.on_complete is not None:
            flow.on_complete(flow)
        flow.done.fire(flow.finish_time)

    # -- rate computation --------------------------------------------------
    def request_recompute(self, resources: Optional[Iterable[Resource]] = None
                          ) -> None:
        """Ask for a fairness recomputation scoped to ``resources`` (or a
        full one when None).

        Inside an event the request is coalesced: the first request
        schedules one flush at the current timestamp (below every ordinary
        priority) and later requests merely widen its dirty set.  Outside
        event context the recomputation happens immediately, preserving
        the historical synchronous semantics for setup/test code.
        """
        if resources is None:
            self._full = True
        else:
            self._dirty.update(resources)
        if self.sim.executing:
            if self._flush_event is None and not self._flushing:
                self._flush_event = self.sim.schedule(
                    0.0, self._on_flush_event, priority=_FLUSH_PRIORITY)
            return
        self._flush()

    def recompute(self) -> None:
        """Force an immediate full progressive-filling recomputation."""
        self._full = True
        self._flush()

    def _on_flush_event(self) -> None:
        self._flush_event = None
        self._flush()

    def _flush(self) -> None:
        """Drain the dirty set: solve the affected bottleneck scope(s) and
        reschedule the next completion event.  Re-entrant requests (e.g. an
        ``on_complete`` callback admitting a new flow) only widen the dirty
        set; the running drain loop picks them up."""
        if self._flushing:
            return
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        self._flushing = True
        try:
            while self._full or self._dirty:
                if self._full:
                    self._full = False
                    self._dirty.clear()
                    self.full_recomputes += 1
                    self._solve_full()
                else:
                    dirty, self._dirty = self._dirty, set()
                    self.scoped_recomputes += 1
                    self._solve_scoped(dirty)
        finally:
            self._flushing = False
        self._schedule_next()

    def _solve_full(self) -> None:
        """Water-fill the entire flow set from raw capacities."""
        now = self.sim.now
        finished: list[Flow] = []
        for f in self.flows:
            if f.rate > 0.0:
                f._sync(now)
                if f.size - f._base <= _EPS:
                    finished.append(f)
            else:
                f._sync_t = now
        for f in finished:
            self._complete(f)
        flows = self.flows
        active = {f for f in flows if not f.paused and f.path}
        for f in flows:
            f.rate = 0.0
        self._res_state.clear()
        self._water_fill(active, None)
        for f in flows:
            f._gen += 1
            if f.rate > _EPS:
                self._push_completion(f, now)

    def _solve_scoped(self, dirty: set[Resource]) -> None:
        """Bottleneck-scoped incremental solve.

        Water-fills only the flows crossing the dirty resources; resources
        their paths leak onto enter with residual capacity (capacity minus
        untouched load).  Afterwards every untouched flow sharing a leaked
        resource is checked against the max-min certificate — saturated
        bottleneck with no faster flow — and an unhappy flow pulls its path
        into scope for another pass.  The fixpoint expands at most to the
        connected component; disjoint bottlenecks never meet it.
        """
        now = self.sim.now
        live = self.flows
        scope_res = set(dirty)
        while True:
            self.bottleneck_recomputes += 1
            scope_flows: set[Flow] = set()
            for r in scope_res:
                scope_flows |= r.flows
            # materialize progress at the outgoing rates before re-rating
            # (inlined Flow._sync: this loop is the solver's hot path)
            finished: Optional[list[Flow]] = None
            for f in scope_flows:
                rate = f.rate
                if rate > 0.0:
                    if now > f._sync_t:
                        size = f.size
                        base = f._base + rate * (now - f._sync_t)
                        if base > size:
                            base = size
                        f._base = base
                        f._sync_t = now
                        log = f.progress_log
                        if log[-1][0] != now:
                            log.append((now, base))
                        if size - base <= _EPS:
                            if finished is None:
                                finished = []
                            finished.append(f)
                    elif f.size - f._base <= _EPS:
                        if finished is None:
                            finished = []
                        finished.append(f)
                else:
                    f._sync_t = now
            if finished is None:
                active = {f for f in scope_flows if not f.paused and f.path}
            else:
                for f in finished:
                    self._complete(f)
                scope_flows.difference_update(finished)
                # completion callbacks may have cancelled peers mid-solve:
                # drop anything no longer managed
                active = {f for f in scope_flows
                          if f in live and not f.paused and f.path}
            # flows leaving service (pause/cancel/complete) always have
            # their whole path in the dirty set, so only active flows can
            # leak the scope onto border resources
            border: Optional[set[Resource]] = None
            res_flows: dict[Resource, set[Flow]] = {}
            for f in active:
                for r in f.path:
                    if r not in scope_res:
                        if border is None:
                            border = set()
                        border.add(r)
            caps: Optional[dict[Resource, float]] = None
            frozen: set[Flow] = set()
            if border:
                # scope paths leak outside the dirty set: those resources
                # enter the fill at their residual capacity and their
                # untouched flows face the optimality check afterwards
                caps = {}
                for r in border:
                    cap = r.capacity
                    for g in r.flows:
                        if g not in scope_flows:
                            frozen.add(g)
                            cap -= g.rate
                    caps[r] = cap if cap > 0.0 else 0.0
            if len(active) != len(scope_flows):
                # inactive scope flows (paused, detached) end at rate 0;
                # every active flow is assigned by the fill itself
                for f in scope_flows:
                    if f not in active:
                        f.rate = 0.0
            if border is None and len(active) == len(scope_flows):
                # every flow on every touched resource is being re-rated:
                # each resource's live set IS r.flows — no copies needed
                for f in active:
                    for r in f.path:
                        if r not in res_flows:
                            res_flows[r] = r.flows
            else:
                for f in active:
                    for r in f.path:
                        s = res_flows.get(r)
                        if s is None:
                            res_flows[r] = s = set()
                        s.add(f)
            self._water_fill(active, caps, res_flows)
            if self._res_state:
                state_pop = self._res_state.pop
                for r in scope_res:
                    state_pop(r, None)
                if border:
                    for r in border:
                        state_pop(r, None)
            # rate assignments: bump generations (invalidating old heap
            # entries) and push fresh completion estimates (inlined
            # _push_completion — same hot path)
            seq = self._seq
            heap = self._heap
            push = heapq.heappush
            for f in scope_flows:
                gen = f._gen + 1
                f._gen = gen
                rate = f.rate
                if rate > _EPS:
                    seq += 1
                    dt = (f.size - f._base) / rate
                    push(heap, (now + (dt if dt > 1e-6 else 1e-6),
                                seq, gen, f))
            self._seq = seq
            if not frozen:
                return
            grew = False
            for f in active | frozen:
                if not self._happy(f):
                    for r in f.path:
                        if r not in scope_res:
                            scope_res.add(r)
                            grew = True
            if not grew:
                return

    def _happy(self, f: Flow) -> bool:
        """Max-min optimality certificate: some resource on the flow's path
        is saturated and carries no faster flow."""
        rate = f.rate
        state = self._res_state
        for r in f.path:
            st = state.get(r)
            if st is None:
                load = 0.0
                maxr = 0.0
                for g in r.flows:
                    gr = g.rate
                    load += gr
                    if gr > maxr:
                        maxr = gr
                st = (load, maxr)
                state[r] = st
            load, maxr = st
            if (load >= r.capacity - _EPS * (1.0 + r.capacity)
                    and rate >= maxr - _EPS * (1.0 + maxr)):
                return True
        return False

    def _water_fill(self, active: set[Flow],
                    caps: Optional[dict[Resource, float]],
                    res_flows: Optional[dict[Resource, set[Flow]]] = None
                    ) -> None:
        """Progressive-filling max-min fair allocation over ``active``.

        ``caps`` overrides the starting capacity for border resources of a
        scoped solve (their residual after untouched flows); every other
        resource starts at its raw capacity, so a scope that covers the
        whole sharing component reproduces the full solve bit-for-bit.
        ``res_flows`` (resource -> active flows crossing it) may be passed
        pre-built by the caller; it is never mutated here.
        """
        if res_flows is None:
            res_flows = {}
            for f in active:
                for r in f.path:
                    s = res_flows.get(r)
                    if s is None:
                        res_flows[r] = s = set()
                    s.add(f)

        if caps:
            remaining_cap = {r: caps.get(r, r.capacity) for r in res_flows}
        else:
            remaining_cap = {r: r.capacity for r in res_flows}
        unfrozen = set(active)
        first = True
        while unfrozen:
            # one pass: live set and bottleneck share per resource.  In the
            # first round every live set is the resource's full flow set.
            best_share = math.inf
            rounds: list[tuple[float, set[Flow]]] = []
            for r, fs in res_flows.items():
                lv = fs if first else fs & unfrozen
                if lv:
                    share = remaining_cap[r] / len(lv)
                    rounds.append((share, lv))
                    if share < best_share:
                        best_share = share
            first = False
            if not math.isfinite(best_share):
                for f in unfrozen:  # defensive: pathless stragglers stop
                    f.rate = 0.0
                break
            if best_share <= _EPS:
                # saturated resources: freeze their flows at zero
                frozen_now = set()
                for share, lv in rounds:
                    if share <= _EPS:
                        frozen_now |= lv
                for f in frozen_now:
                    f.rate = 0.0
                unfrozen -= frozen_now
                continue
            # freeze flows crossing the bottleneck resource(s)
            frozen_now = set()
            for share, lv in rounds:
                if share <= best_share + _EPS:
                    frozen_now |= lv
            if len(frozen_now) == len(unfrozen):
                # everything bottlenecked at once: no later round will read
                # remaining_cap, so skip the subtraction sweep
                for f in frozen_now:
                    f.rate = best_share
                break
            for f in frozen_now:
                f.rate = best_share
                for r in f.path:
                    if r in remaining_cap:
                        remaining_cap[r] = max(0.0,
                                               remaining_cap[r] - best_share)
            unfrozen -= frozen_now

    # -- completion scheduling ---------------------------------------------
    def _push_completion(self, f: Flow, now: float) -> None:
        self._seq += 1
        t = now + max(1e-6, (f.size - f._base) / f.rate)
        heapq.heappush(self._heap, (t, self._seq, f._gen, f))

    @staticmethod
    def _entry_live(entry: tuple[float, int, int, "Flow"]) -> bool:
        f = entry[3]
        return entry[2] == f._gen and f.rate > _EPS and not f.completed

    def _schedule_next(self) -> None:
        h = self._heap
        live = self._entry_live
        while h and not live(h[0]):
            heapq.heappop(h)
        if len(h) > 64 and len(h) > 8 * (len(self.flows) + 1):
            fresh = [e for e in h if live(e)]
            heapq.heapify(fresh)
            self._heap = h = fresh
        if not h:
            if self._next_event is not None:
                self._next_event.cancel()
                self._next_event = None
            self._next_at = math.inf
            return
        t = h[0][0]
        if self._next_event is not None:
            if self._next_at <= t:
                # the pending event fires no later than the next completion;
                # an early wakeup is a cheap no-op that reschedules, so keep
                # it instead of churning the simulator's event heap
                return
            self._next_event.cancel()
        self._next_at = t
        # floor the step at 1 µs (already applied at push time): a residual
        # of a few bytes divided by a MB/s rate is below float time
        # resolution and would otherwise re-fire this event forever
        self._next_event = self.sim.schedule(max(0.0, t - self.sim.now),
                                             self._on_completion_event)

    def _on_completion_event(self) -> None:
        self._next_event = None
        self._next_at = math.inf
        now = self.sim.now
        h = self._heap
        live = self._entry_live
        finished: list[Flow] = []
        while h:
            entry = h[0]
            if not live(entry):
                heapq.heappop(h)
                continue
            if entry[0] > now + 1e-12:
                break
            heapq.heappop(h)
            f = entry[3]
            f._sync(now)
            if f.size - f._base <= _EPS:
                finished.append(f)
            else:
                # sub-resolution residual: re-aim with the 1 µs floor
                f._gen += 1
                self._push_completion(f, now)
        for f in finished:
            self._complete(f)
        # completions marked their resources dirty; the flush rebalances
        # the component that actually gained capacity and reschedules
        self._flush()
