"""Live-socket lifecycle: close/shutdown must be quiet and leak-free.

The sim transport can be torn down in any order without consequence; a
real asyncio datagram endpoint cannot.  These tests pin the three
failure modes a long-running daemon host actually hits:

* closing a transport mid-handshake must not surface unhandled task
  exceptions or "Task was destroyed but it is pending!" noise;
* a full daemon start/shutdown cycle must not leak file descriptors
  (a supervisor restarting a flapping daemon would otherwise exhaust
  the fd table);
* a datagram arriving after ``close()`` is dropped silently.
"""

from __future__ import annotations

import asyncio
import gc
import os

from repro.apps.daemon import WowDaemon
from repro.brunet.config import BrunetConfig
from repro.brunet.node import BrunetNode
from repro.brunet.uri import Uri
from repro.ipop.mapping import addr_for_ip
from repro.transport.runtime import RealtimeKernel
from repro.transport.udp import UdpTransport

FAST = BrunetConfig(link_resend_interval=0.05, link_max_retries=3,
                    overlord_interval=0.05, ping_interval=0.5,
                    liveness_timeout=2.0, wire_mode="codec")


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def test_close_mid_handshake_is_quiet():
    """Tear a node down while its linker is mid-retry against a dead
    seed; no unhandled exceptions may reach the event loop."""
    unhandled = []

    async def scenario():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(lambda _l, ctx: unhandled.append(ctx))
        kernel = RealtimeKernel(seed=0)
        transport = await UdpTransport.create(kernel, "127.0.0.1", 0)
        node = BrunetNode(kernel, None, addr_for_ip("10.200.0.2"),
                          FAST, transport=transport)
        # a port with nobody listening: the handshake can never complete
        node.start([Uri.udp("127.0.0.1", 1)])
        await asyncio.sleep(0.12)  # at least one link send in flight
        node.stop(notify=True)
        await asyncio.sleep(0.12)  # late timers would fire (and blow) here
        gc.collect()
        await asyncio.sleep(0)

    asyncio.run(scenario())
    assert unhandled == [], f"event-loop noise after close: {unhandled}"


def test_daemon_cycle_does_not_leak_fds(tmp_path):
    """start()+shutdown() several daemons in sequence; fd count must
    return to baseline (socket, control socket, cache file all closed)."""

    async def cycle(tag: str, exercise_ctl: bool) -> None:
        d = WowDaemon(f"10.200.1.{tag}", config=FAST,
                      control_path=str(tmp_path / f"{tag}.sock"),
                      peer_cache_path=str(tmp_path / f"{tag}.json"))
        await d.start()
        if exercise_ctl:  # a control handler task must not pin fds either
            reader, writer = await asyncio.open_unix_connection(
                str(tmp_path / f"{tag}.sock"))
            writer.write(b'{"cmd": "status"}\n')
            await writer.drain()
            assert (await reader.readline()).startswith(b'{"ok": true')
            writer.close()
        await d.shutdown("cycle")
        await asyncio.sleep(0.05)

    # warm-up: first pass interns module/loop plumbing that costs fds
    asyncio.run(cycle("2", exercise_ctl=True))
    gc.collect()
    baseline = _open_fds()
    for i in range(3):
        asyncio.run(cycle(str(3 + i), exercise_ctl=True))
    gc.collect()
    assert _open_fds() <= baseline, (
        f"fd leak: {baseline} before, {_open_fds()} after 3 cycles")


def test_datagram_after_close_dropped_silently():
    """A frame that races the socket teardown is dropped, not raised."""
    unhandled = []
    received = []

    async def scenario():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(lambda _l, ctx: unhandled.append(ctx))
        kernel = RealtimeKernel(seed=0)
        receiver = await UdpTransport.create(kernel, "127.0.0.1", 0)
        dst = receiver.open(lambda src, msg, size: received.append(msg))
        sender = await UdpTransport.create(kernel, "127.0.0.1", 0)

        receiver.close()
        # the OS socket is gone (or closing); both the late local send
        # and anything in flight must vanish without an exception
        sender.send(dst, b"too late", size_hint=8)
        await asyncio.sleep(0.05)
        sender.close()
        await asyncio.sleep(0.05)

    asyncio.run(scenario())
    assert received == []
    assert unhandled == [], f"teardown noise: {unhandled}"
