"""``python -m repro.apps.daemon`` — one long-running WOW node.

The deployable twin of the simulator's :class:`~repro.brunet.node.
BrunetNode`: the *unmodified* node + :class:`~repro.ipop.router.
IpopRouter` run over a real :class:`~repro.transport.udp.UdpTransport`
socket, driven by the asyncio :class:`~repro.transport.runtime.
RealtimeKernel`, wrapped in the operational plumbing a real deployment
needs (in the style of IPOP's ``gvpn_controller`` / node daemons):

* a **JSON control socket** (unix domain, newline-delimited JSON) with
  status / peers / links / trim / connect / ping / cache / stats /
  shutdown commands — :mod:`repro.apps.wowctl` is the matching CLI;
* a **cached-peer store** (:class:`~repro.brunet.bootstrap.PeerCache`):
  live peer endpoints persist to disk on a timer and on clean shutdown,
  and on restart are tried *before* the configured seed URIs — so a node
  that comes back after every bootstrap seed died still rejoins
  (decentralized bootstrap per PAPERS.md's P2P-bootstrap paper);
* **graceful drain on SIGTERM/SIGINT**: close-notify every peer, save
  the cache, export the observability bundle, exit 0.

Run one by hand::

    PYTHONPATH=src python -m repro.apps.daemon \
        --vip 10.128.0.2 --listen 127.0.0.1:15000 \
        --control /tmp/wow-n0.sock --peer-cache /tmp/wow-n0.peers.json

or let ``python -m repro.apps.swarm`` spawn a whole testbed of them.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Any, Optional

from repro.brunet.bootstrap import PeerCache, merge_bootstrap_uris
from repro.brunet.config import BrunetConfig
from repro.brunet.connection import ConnectionType
from repro.brunet.node import BrunetNode
from repro.brunet.uri import Uri
from repro.ipop.ippacket import IcmpEcho, VirtualIpPacket
from repro.ipop.mapping import addr_for_ip
from repro.ipop.router import IpopRouter
from repro.transport.runtime import RealtimeKernel
from repro.transport.udp import UdpTransport

#: deployment timers: tighter than the paper's conservative constants
#: (which target WAN NAT traversal) but far from the sim-demo extremes —
#: a localhost swarm should join in seconds and notice death in a few
DAEMON_CONFIG = BrunetConfig(
    link_resend_interval=0.5,
    link_max_retries=3,
    overlord_interval=0.5,
    ping_interval=2.0,
    liveness_timeout=15.0,
    shortcut_idle_drop=60.0,
    wire_mode="codec",
)

#: control-protocol line cap (one JSON request per line)
MAX_CTL_LINE = 1 << 16


class WowDaemon:
    """One node's runtime: kernel + transport + node + router + plumbing.

    Importable and in-process-testable: ``await start()`` brings the
    overlay endpoint up, ``await wait()`` blocks until a shutdown is
    requested (signal or control command), ``await shutdown()`` drains.
    """

    def __init__(self, vip: str, listen: tuple[str, int] = ("127.0.0.1", 0),
                 seed_uris: Optional[list[Uri]] = None,
                 control_path: Optional[str] = None,
                 peer_cache_path: Optional[str] = None,
                 cache_interval: float = 5.0,
                 config: Optional[BrunetConfig] = None,
                 name: str = "",
                 stats_port: Optional[int] = None,
                 stats_public: bool = False,
                 bundle_out: Optional[str] = None):
        self.vip = vip
        self.listen = listen
        self.seed_uris = list(seed_uris or [])
        self.control_path = control_path
        self.cache_interval = cache_interval
        self.config = config or DAEMON_CONFIG
        self.name = name or f"wow.{vip}"
        self.stats_port = stats_port
        self.stats_public = stats_public
        self.bundle_out = bundle_out
        self.cache = (PeerCache(peer_cache_path)
                      if peer_cache_path else None)
        self.kernel: Optional[RealtimeKernel] = None
        self.transport: Optional[UdpTransport] = None
        self.node: Optional[BrunetNode] = None
        self.router: Optional[IpopRouter] = None
        self._ctl_server: Optional[asyncio.AbstractServer] = None
        self._ctl_tasks: set[asyncio.Task] = set()
        self._cache_task: Optional[asyncio.Task] = None
        self._ping_seq = 0
        self._ping_waiters: dict[int, asyncio.Future] = {}
        self._shutdown_requested = asyncio.Event()
        self._finished = asyncio.Event()
        self.exit_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket, join the overlay, open the control socket."""
        self.kernel = RealtimeKernel(seed=0)
        if self.stats_port is not None:
            await self.kernel.serve_stats(port=self.stats_port,
                                          public=self.stats_public)
        self.transport = await UdpTransport.create(
            self.kernel, self.listen[0], self.listen[1], name=self.name)
        self.node = BrunetNode(self.kernel, None, addr_for_ip(self.vip),
                               self.config, transport=self.transport,
                               name=self.name)
        self.router = IpopRouter(self.node, self.vip)
        self.router.bind("icmp", 0, self._on_icmp_reply)
        # `is not None`, not truthiness: PeerCache has __len__, and the
        # in-memory cache is always empty before load()
        cached: list[Uri] = (self.cache.load()
                             if self.cache is not None else [])
        # cached peers first: they were alive recently, the seeds may be
        # long dead (the whole point of decentralized bootstrap)
        self.node.start(merge_bootstrap_uris(self.seed_uris, cached))
        if self.control_path:
            if os.path.exists(self.control_path):
                os.unlink(self.control_path)
            self._ctl_server = await asyncio.start_unix_server(
                self._handle_ctl, path=self.control_path)
        if self.cache is not None:
            self._cache_task = asyncio.ensure_future(self._cache_loop())

    async def wait(self) -> None:
        """Block until a shutdown has been requested and completed."""
        await self._shutdown_requested.wait()
        await self.shutdown(self.exit_reason or "requested")
        await self._finished.wait()

    def request_shutdown(self, reason: str) -> None:
        """Signal-handler-safe shutdown trigger."""
        self.exit_reason = self.exit_reason or reason
        self._shutdown_requested.set()

    async def shutdown(self, reason: str = "shutdown") -> None:
        """Graceful drain: notify peers, persist the cache, export the
        obs bundle, close every socket.  Idempotent."""
        if self._finished.is_set():
            return
        self.exit_reason = self.exit_reason or reason
        if self._cache_task is not None:
            self._cache_task.cancel()
            self._cache_task = None
        if self.cache is not None and self.node is not None:
            self._record_live_peers()
            self.cache.save()
        if self._ctl_server is not None:
            self._ctl_server.close()
            await self._ctl_server.wait_closed()
            self._ctl_server = None
            if self.control_path and os.path.exists(self.control_path):
                os.unlink(self.control_path)
        for task in list(self._ctl_tasks):
            task.cancel()
        if self._ctl_tasks:
            await asyncio.gather(*self._ctl_tasks, return_exceptions=True)
        self._ctl_tasks.clear()
        for fut in self._ping_waiters.values():
            if not fut.done():
                fut.cancel()
        self._ping_waiters.clear()
        if self.node is not None and self.node.active:
            self.node.stop(notify=True)
        elif self.transport is not None:
            self.transport.close()
        if self.bundle_out and self.kernel is not None:
            self.kernel.obs.export(self.bundle_out, seed=0)
        if self.kernel is not None:
            self.kernel.close_stats()
        self._finished.set()

    # ------------------------------------------------------------------
    # cached-peer store
    # ------------------------------------------------------------------
    def _record_live_peers(self) -> None:
        """Snapshot every live connection (and what those peers advertise
        about themselves) into the peer cache."""
        node, cache = self.node, self.cache
        uris: list[Uri] = []
        for conn in node.table.all():
            uris.append(Uri("udp", conn.remote_endpoint))
            uris.extend(node.peer_uris.get(conn.peer_addr, ()))
        own = self.transport.local_endpoint
        cache.record([u for u in uris if u.endpoint != own])

    async def _cache_loop(self) -> None:
        """Persist the cache on a timer, so even a SIGKILLed daemon
        restarts with recent peers."""
        while True:
            await asyncio.sleep(self.cache_interval)
            if self.node is not None and len(self.node.table):
                self._record_live_peers()
                self.cache.save()

    # ------------------------------------------------------------------
    # virtual-IP ping plumbing
    # ------------------------------------------------------------------
    def _on_icmp_reply(self, pkt: VirtualIpPacket) -> None:
        echo = pkt.payload
        if not isinstance(echo, IcmpEcho) or not echo.is_reply:
            return
        fut = self._ping_waiters.pop(echo.seq, None)
        if fut is not None and not fut.done():
            fut.set_result(self.kernel.now - echo.sent_at)

    async def ping(self, dst_vip: str, timeout: float = 5.0) -> Optional[float]:
        """One tunnelled ICMP echo; returns RTT seconds or None on loss."""
        self._ping_seq += 1
        seq = self._ping_seq
        fut = asyncio.get_running_loop().create_future()
        self._ping_waiters[seq] = fut
        echo = IcmpEcho(seq, False, self.kernel.now)
        self.router.send_ip(dst_vip, "icmp", 0, echo, 64)
        try:
            return await asyncio.wait_for(fut, timeout)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._ping_waiters.pop(seq, None)
            return None

    # ------------------------------------------------------------------
    # control surface
    # ------------------------------------------------------------------
    def status(self) -> dict:
        node = self.node
        left = node.table.left_neighbor()
        right = node.table.right_neighbor()
        return {
            "name": self.name,
            "vip": self.vip,
            "addr": node.addr.hex(),
            "endpoint": str(self.transport.local_endpoint),
            "uri": str(node.uris.local),
            "pid": os.getpid(),
            "uptime": self.kernel.now,
            "active": node.active,
            "in_ring": node.in_ring,
            "connections": len(node.table),
            "left": left.peer_addr.hex() if left else None,
            "right": right.peer_addr.hex() if right else None,
            "bootstrap_uris": [str(u) for u in node.bootstrap_uris],
            "cache": {"path": self.cache.path, "peers": len(self.cache)}
                     if self.cache is not None else None,
            "stats": dict(node.stats),
        }

    def peers(self) -> list[dict]:
        node = self.node
        now = self.kernel.now
        out = []
        for conn in node.table.all():
            out.append({
                "addr": conn.peer_addr.hex(),
                "types": sorted(t.value for t in conn.types),
                "endpoint": str(conn.remote_endpoint),
                "age": now - conn.established_at,
                "last_heard": now - conn.last_heard,
                "packets_sent": conn.packets_sent,
                "packets_received": conn.packets_received,
                "bytes_sent": conn.bytes_sent,
            })
        out.sort(key=lambda p: p["addr"])
        return out

    def trim(self, ttl: float) -> list[str]:
        """Drop pure-shortcut links idle longer than ``ttl`` seconds (the
        IPOP ``BaseTopologyManager`` link-TTL policy).  Ring and far links
        are never trimmed — greedy routing depends on them."""
        node = self.node
        now = self.kernel.now
        dropped = []
        for conn in node.table.all():
            if conn.types != {ConnectionType.SHORTCUT}:
                continue
            if now - conn.last_heard >= ttl:
                dropped.append(conn.peer_addr.hex())
                node.drop_connection(conn, reason="ctl-trim", notify=True)
        return dropped

    async def _dispatch(self, req: dict) -> dict:
        cmd = req.get("cmd")
        if cmd == "status":
            return self.status()
        if cmd == "peers":
            return {"peers": self.peers()}
        if cmd == "links":
            return {"established": self.peers(),
                    "in_flight": self.node.linker.snapshot()}
        if cmd == "cache":
            if self.cache is None:
                return {"cache": None}
            return {"path": self.cache.path, "peers": self.cache.snapshot()}
        if cmd == "save-cache":
            if self.cache is None:
                return {"saved": False}
            self._record_live_peers()
            self.cache.save()
            return {"saved": True, "peers": len(self.cache)}
        if cmd == "trim":
            return {"dropped": self.trim(float(req.get("ttl", 30.0)))}
        if cmd == "connect":
            target = req.get("vip")
            addr = addr_for_ip(target)
            self.node.connect_to(addr, ConnectionType.SHORTCUT)
            return {"requested": addr.hex()}
        if cmd == "rebootstrap":
            uris = [Uri.parse(u) for u in req.get("uris", [])]
            return {"adopted": self.node.rebootstrap(uris)}
        if cmd == "ping":
            rtt = await self.ping(req["vip"],
                                  timeout=float(req.get("timeout", 5.0)))
            return {"vip": req["vip"], "rtt": rtt, "replied": rtt is not None}
        if cmd == "stats":
            from repro.obs.top import build_stats
            return build_stats(self.kernel)
        if cmd == "shutdown":
            self.request_shutdown("control")
            return {"stopping": True}
        raise ValueError(f"unknown command {cmd!r}")

    async def _handle_ctl(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """One control connection: newline-delimited JSON request/reply."""
        self._ctl_tasks.add(asyncio.current_task())
        try:
            while True:
                line = await reader.readline()
                if not line or len(line) > MAX_CTL_LINE:
                    break
                try:
                    req = json.loads(line)
                    reply = {"ok": True, **await self._dispatch(req)}
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    reply = {"ok": False, "error": str(exc)}
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # daemon shutting down while a client is attached
        finally:
            self._ctl_tasks.discard(asyncio.current_task())
            writer.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_listen(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.daemon",
        description=__doc__.split("\n")[0])
    parser.add_argument("--vip", required=True,
                        help="virtual IP owned by this node (10.128.x.y)")
    parser.add_argument("--listen", type=_parse_listen,
                        default=("127.0.0.1", 0), metavar="IP:PORT",
                        help="UDP bind address (port 0 = OS-assigned)")
    parser.add_argument("--seed-uri", action="append", default=[],
                        metavar="URI",
                        help="bootstrap seed (brunet.udp:IP:PORT); "
                             "repeatable")
    parser.add_argument("--control", metavar="PATH",
                        help="unix control-socket path (wowctl attaches "
                             "here)")
    parser.add_argument("--peer-cache", metavar="PATH",
                        help="cached-peer store for seedless restart")
    parser.add_argument("--cache-interval", type=float, default=5.0,
                        help="seconds between peer-cache writes")
    parser.add_argument("--name", default="",
                        help="node name in logs/metrics (default wow.VIP)")
    parser.add_argument("--stats-port", type=int, default=None,
                        help="UDP stats socket for obs.top (0=ephemeral)")
    parser.add_argument("--stats-public", action="store_true",
                        help="answer stats queries from non-loopback "
                             "sources too")
    parser.add_argument("--bundle-out", metavar="DIR",
                        help="export the observability bundle here on "
                             "shutdown (audit with repro.check.posthoc)")
    parser.add_argument("--paper-timers", action="store_true",
                        help="use the paper's conservative protocol "
                             "timers instead of the deployment defaults")
    return parser


async def amain(args: argparse.Namespace) -> int:
    daemon = WowDaemon(
        vip=args.vip,
        listen=args.listen,
        seed_uris=[Uri.parse(u) for u in args.seed_uri],
        control_path=args.control,
        peer_cache_path=args.peer_cache,
        cache_interval=args.cache_interval,
        config=(BrunetConfig(wire_mode="codec") if args.paper_timers
                else DAEMON_CONFIG),
        name=args.name,
        stats_port=args.stats_port,
        stats_public=args.stats_public,
        bundle_out=args.bundle_out,
    )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            sig, daemon.request_shutdown, signal.Signals(sig).name)
    await daemon.start()
    print(f"{daemon.name}: up on {daemon.transport.local_endpoint} "
          f"addr={daemon.node.addr.hex()[:12]}… "
          f"control={args.control or '-'}", flush=True)
    await daemon.wait()
    print(f"{daemon.name}: drained ({daemon.exit_reason})", flush=True)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(amain(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


if __name__ == "__main__":
    sys.exit(main())
