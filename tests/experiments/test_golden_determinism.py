"""Golden-trace determinism: the timer wheel must not change results.

Whole experiments are run twice — hybrid wheel+heap kernel vs pure heap —
and their summary statistics must be byte-identical (same seed → same
event order → same RNG draws → same floats).
"""

import json

import pytest

from repro.sim import Simulator


@pytest.fixture
def heap_only():
    """Flip the process-wide default so experiment-internal Simulators run
    on the plain heap."""
    def _set(value: bool):
        Simulator.default_timer_wheel = value
    yield _set
    Simulator.default_timer_wheel = True


def test_scaling_summary_identical_with_wheel_on_and_off(heap_only):
    from repro.experiments import scaling

    def summary():
        p = scaling.measure(32, seed=3, sample_pairs=60)
        return json.dumps(p.__dict__, sort_keys=True)

    heap_only(True)
    with_wheel = summary()
    heap_only(False)
    without_wheel = summary()
    assert with_wheel == without_wheel


def test_joincdf_summary_identical_with_wheel_on_and_off(heap_only):
    from repro.experiments import join_latency_cdf

    def summary():
        r = join_latency_cdf.run(seed=1, scale=0.25, trials=2, window=40.0)
        return json.dumps([r.route_times, r.direct_times])

    heap_only(True)
    with_wheel = summary()
    heap_only(False)
    without_wheel = summary()
    assert with_wheel == without_wheel


def test_overlay_event_stream_identical_with_wheel_on_and_off(heap_only):
    """Beyond summaries: the full trace of a churny overlay build (joins,
    pings, drops, shortcut formation) must match event for event."""
    from repro.brunet import BrunetConfig, BrunetNode, random_address
    from repro.brunet.uri import Uri
    from repro.phys import Internet, Site

    def build():
        sim = Simulator(seed=5, trace=True)
        net = Internet(sim)
        site = Site(net, "pub")
        rng = sim.rng.stream("golden")
        boot = None
        nodes = []
        for i in range(10):
            h = site.add_host(f"h{i}")
            n = BrunetNode(sim, h, random_address(rng), BrunetConfig(),
                           name=f"n{i}")
            n.start([boot] if boot else [])
            if boot is None:
                boot = Uri.udp(h.ip, n.port)
            nodes.append(n)
            sim.run(until=sim.now + 2.0)
        nodes[3].stop()  # churn: cancels its timers, drops its links
        sim.run(until=sim.now + 60.0)
        return [(cat, t, repr(sorted(data.items())))
                for cat, recs in sorted(sim.tracer.records.items())
                for t, data in recs]

    heap_only(True)
    with_wheel = build()
    heap_only(False)
    without_wheel = build()
    assert with_wheel == without_wheel
