"""Post-hoc bundle audit: real exports audit clean, corrupted ones fail."""

from __future__ import annotations

import json
import os

import pytest

from repro.check import audit_bundle
from repro.check.posthoc import main as posthoc_main
from tests.conftest import build_overlay


def _write_jsonl(path, rows):
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")


def _write_bundle(tmp_path, manifest_extra=None, spans=None, events=None,
                  violations=None):
    """A minimal synthetic bundle (manifest + whatever files are given)."""
    files = {}
    if spans is not None:
        _write_jsonl(tmp_path / "spans.jsonl", spans)
        files["spans"] = "spans.jsonl"
    if events is not None:
        _write_jsonl(tmp_path / "events.jsonl", events)
        files["events"] = "events.jsonl"
    if violations is not None:
        _write_jsonl(tmp_path / "violations.jsonl", violations)
        files["violations"] = "violations.jsonl"
    manifest = {"seed": 0, "sim_time": 2000.0, "files": files,
                "spans_dropped": 0}
    manifest.update(manifest_extra or {})
    with open(tmp_path / "manifest.json", "w") as fh:
        json.dump(manifest, fh)
    return str(tmp_path)


def test_real_export_audits_clean(sim, internet, tmp_path):
    sim.obs.enable_spans()
    sim.obs.enable_recorder(
        capacity=64, spill_path=str(tmp_path / "events.jsonl"))
    build_overlay(sim, internet, 6)
    sim.obs.export(str(tmp_path), seed=1234)
    assert audit_bundle(str(tmp_path)) == []


def test_missing_manifest_is_flagged(tmp_path):
    found = audit_bundle(str(tmp_path))
    assert [v.kind for v in found] == ["bundle.no-manifest"]


def test_missing_referenced_file_is_flagged(sim, internet, tmp_path):
    sim.obs.enable_spans()
    build_overlay(sim, internet, 4)
    sim.obs.export(str(tmp_path), seed=1234)
    os.remove(tmp_path / "spans.jsonl")
    found = audit_bundle(str(tmp_path))
    assert "bundle.missing-file:spans" in {v.key for v in found}


def test_corrupt_jsonl_is_flagged(tmp_path):
    run_dir = _write_bundle(tmp_path, spans=[])
    with open(tmp_path / "spans.jsonl", "w") as fh:
        fh.write("{not json\n")
    found = audit_bundle(run_dir)
    assert "bundle.corrupt-file:spans" in {v.key for v in found}


def test_dangling_parent_is_flagged(tmp_path):
    run_dir = _write_bundle(tmp_path, spans=[
        {"id": 1, "trace": 7, "parent": None, "name": "ip.packet",
         "node": "n0", "t0": 1.0, "t1": 2.0},
        {"id": 2, "trace": 7, "parent": 99, "name": "route.hop",
         "node": "n1", "t0": 1.5, "t1": 1.5},
    ])
    found = audit_bundle(run_dir)
    assert "span.dangling-parent:2" in {v.key for v in found}


def test_dangling_parent_suppressed_when_spans_dropped(tmp_path):
    run_dir = _write_bundle(tmp_path, manifest_extra={"spans_dropped": 5},
                            spans=[
        {"id": 2, "trace": 7, "parent": 99, "name": "route.hop",
         "node": "n1", "t0": 1.5, "t1": 1.5},
    ])
    assert audit_bundle(run_dir) == []


def test_open_non_root_span_is_flagged(tmp_path):
    run_dir = _write_bundle(tmp_path, spans=[
        {"id": 1, "trace": 7, "parent": None, "name": "ip.packet",
         "node": "n0", "t0": 1.0, "t1": None},       # open root: legal
        {"id": 2, "trace": 7, "parent": 1, "name": "link.attempt",
         "node": "n1", "t0": 5.0, "t1": None},       # open child: leak
    ])
    found = audit_bundle(run_dir)
    assert {v.key for v in found} == {"span.dangling:2"}


def test_conn_drop_excess_is_flagged(tmp_path):
    run_dir = _write_bundle(tmp_path, events=[
        {"t": 1.0, "node": "n0", "category": "conn.add", "data": {}},
        {"t": 2.0, "node": "n0", "category": "conn.drop", "data": {}},
        {"t": 3.0, "node": "n0", "category": "conn.drop", "data": {}},
    ])
    found = audit_bundle(run_dir)
    assert "bundle.conn-balance:n0" in {v.key for v in found}


def test_recorded_violations_fail_the_bundle(tmp_path):
    run_dir = _write_bundle(tmp_path, violations=[
        {"t": 10.0, "check": "ring", "kind": "ring.partition", "node": "",
         "key": "ring.partition", "detail": "overlay split"},
    ])
    found = audit_bundle(run_dir)
    assert "ring.partition" in {v.kind for v in found}


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean"
    clean.mkdir()
    _write_bundle(clean, spans=[])
    assert posthoc_main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out

    dirty = tmp_path / "dirty"
    dirty.mkdir()
    _write_bundle(dirty, violations=[
        {"t": 1.0, "check": "ring", "kind": "ring.partition", "node": "",
         "key": "ring.partition", "detail": "split"}])
    assert posthoc_main([str(dirty)]) == 1
    assert "violation" in capsys.readouterr().out
