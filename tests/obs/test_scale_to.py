"""Observability.scale_to: node-series threshold and rollup wiring."""

from __future__ import annotations

from repro.obs.hub import NODE_SERIES_MAX
from repro.sim import Simulator


def test_small_populations_keep_node_series():
    sim = Simulator(seed=0)
    m = sim.obs.scale_to(NODE_SERIES_MAX - 1)
    assert m is sim.obs.metrics
    assert m.node_series is True
    assert sim.obs.rollup is None


def test_large_populations_collapse_node_series():
    sim = Simulator(seed=0)
    m = sim.obs.scale_to(NODE_SERIES_MAX)
    assert m.node_series is False
    c1 = m.counter("brunet.sent", node="a")
    c2 = m.counter("brunet.sent", node="b")
    c1.inc()
    c2.inc(2)
    # both label sets collapsed into one aggregate child
    assert c1 is c2
    assert c1.value == 3


def test_explicit_override_beats_threshold():
    sim = Simulator(seed=0)
    assert sim.obs.scale_to(10, node_series=False).node_series is False
    sim2 = Simulator(seed=0)
    assert sim2.obs.scale_to(10_000,
                             node_series=True).node_series is True


def test_rollup_registered_only_when_aggregated():
    small = Simulator(seed=0)
    small.obs.scale_to(10, nodes_fn=lambda: [])
    assert small.obs.rollup is None

    big = Simulator(seed=0)
    big.obs.scale_to(10_000, nodes_fn=lambda: [], sectors=8)
    assert big.obs.rollup is not None
    assert big.obs.rollup.sectors == 8
    # idempotent: a second call must not stack another rollup collector
    prev = big.obs.rollup
    big.obs.scale_to(10_000, nodes_fn=lambda: [])
    assert big.obs.rollup is prev
