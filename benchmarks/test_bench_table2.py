"""Benchmark + regeneration of Table II (ttcp bandwidth, reduced sizes)."""

from benchmarks.conftest import run_once
from repro.experiments import table2_bandwidth
from repro.sim.units import MB


def test_table2_bandwidth(benchmark):
    rows = run_once(benchmark, table2_bandwidth.run, seed=3, scale=0.3,
                    repetitions=2, sizes=(MB(8.0),))
    table2_bandwidth.report(rows)
    by = {(r.pair, r.shortcuts): r.mean_KBps for r in rows}
    # paper: 1614/1250 KB/s with shortcuts vs 84/85 without
    assert 1400 <= by[("UFL-UFL", True)] <= 1800
    assert 1050 <= by[("UFL-NWU", True)] <= 1450
    assert by[("UFL-UFL", True)] / by[("UFL-UFL", False)] > 8.0
    assert by[("UFL-NWU", True)] / by[("UFL-NWU", False)] > 8.0
