"""Pre/post-refactor byte-identity (ISSUE 9 satellite).

The digests below were captured on main *before* the array-backed ring
index, sweep-wheel timer layer and sharded kernel landed.  They pin the
complete tracer record stream (plus result payloads) of a small churn
run and a small fig4 run, so the refactor is machine-checked to be
decision-identical: same seed, byte-identical trajectory.

Regenerate (only when an *intentional* trajectory change lands)::

    PYTHONPATH=src python -m tests.experiments._golden_fp
"""

from tests.experiments._golden_fp import capture_churn, capture_fig4

#: captured at 8e638bd (pre ISSUE-9 refactor)
CHURN_FP = "4a3dbc42990e618dd912f53ab3c5b23ffc91ba7176a80ea8f5aa093f841915ca"
FIG4_FP = "bffcc6c25d35690195b590010f591e32275a131b4045fd848e734483fea87d32"


def test_churn_trajectory_byte_identical_to_main():
    assert capture_churn(seed=0) == CHURN_FP


def test_fig4_trajectory_byte_identical_to_main():
    assert capture_fig4(seed=0) == FIG4_FP
