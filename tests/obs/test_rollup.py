"""Streaming aggregation: sector rollups, delta reader, aggregate mode."""

import pytest

from repro.brunet.address import ADDRESS_BITS
from repro.obs.metrics import DeltaReader, MetricsRegistry, SectorRollup
from repro.sim.engine import Simulator


# ---------------------------------------------------------------------------
# sector arithmetic
# ---------------------------------------------------------------------------

def test_sector_of_boundaries():
    m = MetricsRegistry()
    roll = SectorRollup(m, lambda: [], sectors=4, space_bits=8)
    # 8-bit ring, 4 arcs of 64 addresses each
    assert roll.sector_of(0) == 0
    assert roll.sector_of(63) == 0
    assert roll.sector_of(64) == 1
    assert roll.sector_of(191) == 2
    assert roll.sector_of(192) == 3
    assert roll.sector_of(255) == 3


def test_sector_labels_zero_padded():
    m = MetricsRegistry()
    roll = SectorRollup(m, lambda: [], sectors=16)
    assert roll.label(0) == "00"
    assert roll.label(15) == "15"
    wide = SectorRollup(m, lambda: [], sectors=128)
    assert wide.label(5) == "005"


def test_sectors_validation():
    with pytest.raises(ValueError):
        SectorRollup(MetricsRegistry(), lambda: [], sectors=0)


# ---------------------------------------------------------------------------
# rollup totals vs per-node sums on a real overlay
# ---------------------------------------------------------------------------

def _small_overlay():
    from repro.brunet.config import BrunetConfig
    from repro.experiments.churn_recovery import _build_overlay

    sim = Simulator(seed=2, trace=False)
    _internet, nodes, _routers = _build_overlay(sim, 8, BrunetConfig())
    sim.run(until=sim.now + 120.0)
    return sim, nodes


def test_rollup_matches_per_node_sums():
    sim, nodes = _small_overlay()
    live = [n for n in nodes if n.active]
    roll = sim.obs.enable_rollup(lambda: live, sectors=4)
    rows = roll.refresh()
    assert len(rows) == 4
    for field, expect in [
        ("nodes", len(live)),
        ("conns", sum(len(n.table) for n in live)),
        ("route_sent", sum(n.stats.get("sent", 0) for n in live)),
        ("route_fwd", sum(n.stats.get("forwarded", 0) for n in live)),
        ("route_dlvd", sum(n.stats.get("delivered", 0) for n in live)),
        ("route_drops", sum(n.stats.get("ttl_drop", 0)
                            + n.stats.get("undeliverable", 0)
                            for n in live)),
    ]:
        assert sum(r[field] for r in rows) == expect, field
    assert sum(r["nodes"] for r in rows) > 0
    # every node landed in a valid arc of the 160-bit ring
    assert all(0 <= roll.sector_of(n.addr) < 4 for n in live)
    assert roll.space_bits == ADDRESS_BITS


def test_rollup_collector_publishes_o_sectors_series():
    sim, nodes = _small_overlay()
    sim.obs.enable_rollup(lambda: [n for n in nodes if n.active],
                          sectors=4)
    rows = sim.obs.metrics.snapshot()
    sector_rows = [r for r in rows if r["name"].startswith("ring.sector.")]
    # 6 fields × 4 sectors, regardless of node count
    assert len(sector_rows) == 24
    by_name = {}
    for r in sector_rows:
        by_name.setdefault(r["name"], []).append(r)
    assert all(len(v) == 4 for v in by_name.values())
    live = [n for n in nodes if n.active]
    total = sum(r["value"] for r in by_name["ring.sector.conns"])
    assert total == sum(len(n.table) for n in live)


# ---------------------------------------------------------------------------
# aggregate (node_series=False) mode
# ---------------------------------------------------------------------------

def test_node_series_off_collapses_children():
    m = MetricsRegistry(node_series=False)
    a = m.counter("brunet.route.sent", node="a")
    b = m.counter("brunet.route.sent", node="b")
    assert a is b  # one aggregate child
    a.inc(3)
    b.inc(4)
    rows = m.snapshot()
    assert len(rows) == 1
    assert rows[0]["value"] == 7
    assert "node" not in rows[0]["labels"]


def test_node_series_off_gauge_fn_sums():
    m = MetricsRegistry(node_series=False)
    m.gauge_fn("brunet.connections", lambda: 2, node="a")
    m.gauge_fn("brunet.connections", lambda: 5, node="b")
    rows = m.snapshot()
    assert len(rows) == 1
    assert rows[0]["value"] == 7


def test_node_series_on_keeps_per_node_children():
    m = MetricsRegistry()
    m.gauge_fn("brunet.connections", lambda: 2, node="a")
    m.gauge_fn("brunet.connections", lambda: 5, node="b")
    rows = m.snapshot()
    assert [r["value"] for r in rows] == [2, 5]


# ---------------------------------------------------------------------------
# DeltaReader
# ---------------------------------------------------------------------------

def test_delta_reader_returns_only_changes():
    m = MetricsRegistry()
    c = m.counter("x", node="a")
    g = m.gauge("y")
    h = m.histogram("z")
    c.inc()
    g.set(5)
    h.observe(1.0)
    reader = DeltaReader(m)
    first = reader.changed()
    assert {r["name"] for r in first} == {"x", "y", "z"}
    # nothing moved → empty delta
    assert reader.changed() == []
    c.inc()
    delta = reader.changed()
    assert [r["name"] for r in delta] == ["x"]
    assert delta[0]["value"] == 2
    # histogram change is detected via (count, total)
    h.observe(1.0)
    assert [r["name"] for r in reader.changed()] == ["z"]


def test_delta_readers_have_independent_cursors():
    m = MetricsRegistry()
    c = m.counter("x")
    c.inc()
    r1, r2 = DeltaReader(m), DeltaReader(m)
    assert len(r1.changed()) == 1
    c.inc()
    # r2 never read: sees the series once, with the latest value
    rows = r2.changed()
    assert len(rows) == 1 and rows[0]["value"] == 2
    assert len(r1.changed()) == 1


def test_delta_reader_skips_collectors_when_asked():
    m = MetricsRegistry()
    calls = []
    m.add_collector(lambda reg: calls.append(1))
    DeltaReader(m).changed(run_collectors=False)
    assert calls == []
    DeltaReader(m).changed()
    assert calls == [1]
