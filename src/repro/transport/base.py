"""The transport interface protocol code programs against.

``BrunetNode`` never touches sockets, hosts or the simulated internet
directly; it sends through a :class:`Transport` and receives datagrams on
the handler it passed to :meth:`Transport.open`.  The handler contract is
the historical socket one::

    handler(message, src_endpoint, size_bytes)

where ``message`` is a decoded protocol object (transports running the
wire codec decode before dispatch — a frame that fails to decode is
counted on the ``wire.decode_error`` metric and dropped, mirroring how a
real daemon must treat garbage datagrams).
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.brunet.uri import Uri
from repro.phys.endpoints import Endpoint

ReceiveHandler = Callable[[Any, Endpoint, int], None]


class Transport(abc.ABC):
    """One node's datagram endpoint (sim-backed or socket-backed)."""

    @property
    @abc.abstractmethod
    def local_endpoint(self) -> Endpoint:
        """The (ip, port) this transport is reachable at."""

    @property
    def local_uri(self) -> Uri:
        """The UDP URI of :attr:`local_endpoint`."""
        ep = self.local_endpoint
        return Uri.udp(ep.ip, ep.port)

    @abc.abstractmethod
    def open(self, handler: ReceiveHandler) -> Endpoint:
        """Begin receiving into ``handler``; returns the bound endpoint
        (which may differ from the requested one, e.g. ephemeral-port
        fallback).  Idempotent across close/open cycles."""

    @abc.abstractmethod
    def send(self, dst: Endpoint, msg: Any, size_hint: int = 0) -> None:
        """Fire-and-forget one message.  ``size_hint`` is the
        paper-constant byte charge; transports in measured/codec modes
        ignore it and charge the encoded length instead."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop receiving and release the endpoint (idempotent)."""
