"""Deterministic wire-format codec for WOW protocol messages.

The simulator historically passed Python message objects by reference and
charged ``size`` from config constants; the Brunet/IPOP systems the paper
describes exchange real serialized datagrams over UDP.  This package is
the bridge: a compact binary encoding (version byte, type tag,
length-prefixed fields) for every protocol message, so that

* the same ``BrunetNode``/``IpopRouter`` code runs over real sockets
  (:class:`repro.transport.udp.UdpTransport`) or the simulator
  (:class:`repro.transport.sim.SimTransport`);
* byte accounting can be *measured* (``len(encode(msg))``) instead of
  asserted from constants — see ``BrunetConfig.wire_mode``.

Decode failures raise the typed :class:`DecodeError`; transports count
them (``wire.decode_error``) and drop the datagram instead of letting the
exception escape the event loop.
"""

from repro.wire.codec import (
    UDP_IP_OVERHEAD,
    DecodeError,
    FrameHeader,
    RawBody,
    WIRE_VERSION,
    decode,
    decode_lazy,
    encode,
    encoded_size,
    materialize,
    peek_header,
)
from repro.wire.sizing import encap_overhead, reference_sizes

__all__ = [
    "UDP_IP_OVERHEAD",
    "WIRE_VERSION",
    "DecodeError",
    "FrameHeader",
    "RawBody",
    "decode",
    "decode_lazy",
    "encode",
    "encoded_size",
    "materialize",
    "peek_header",
    "encap_overhead",
    "reference_sizes",
]
