#!/usr/bin/env python
"""Transparent WAN VM migration (the paper's §V-C experiments).

An SCP download is in flight from a server VM at UFL when the server is
live-migrated to NWU: suspend, ship the memory image and copy-on-write
logs over the WAN, resume, kill-and-restart IPOP.  The transfer stalls
during the outage and resumes by itself — no application restarts — and
finishes *faster* because both endpoints now share the NWU LAN.

Run:  python examples/live_migration.py
"""

from repro.core import build_paper_testbed
from repro.middleware.ssh import ScpClient, ScpServer
from repro.sim import Simulator
from repro.sim.process import Process
from repro.sim.units import MB


def main() -> None:
    sim = Simulator(seed=5, trace=False)
    testbed = build_paper_testbed(sim, n_planetlab_routers=24,
                                  n_planetlab_hosts=6)
    testbed.run_warmup()
    dep = testbed.deployment

    server_vm = testbed.vm(3)   # UFL
    client_vm = testbed.vm(17)  # NWU
    print(f"SCP server: {server_vm.name} at {server_vm.host.site.name}; "
          f"client: {client_vm.name} at {client_vm.host.site.name}")

    scp = ScpServer(server_vm)
    scp.put_file("dataset.tar", MB(200.0))
    client = ScpClient(client_vm, server_vm.virtual_ip)
    t0 = sim.now
    download = Process(sim, client.download("dataset.tar"))

    def migrate() -> None:
        print(f"t={sim.now - t0:5.0f}s  suspending {server_vm.name}, "
              f"shipping image to NWU…")
        done = server_vm.migrate(dep.sites["nwu"], transfer_size=MB(120.0))
        done.wait_callback(lambda rec: print(
            f"t={sim.now - t0:5.0f}s  resumed at {rec.dst_site}; IPOP "
            f"restarted, rejoining the overlay (outage {rec.outage:.0f}s)"))

    sim.schedule(60.0, migrate)

    # progress reporter
    def report() -> None:
        if client.transfer is not None and not download.done.fired:
            eff = dep.calib.scp_efficiency
            size = client.transfer.current_transferred() * eff
            state = "stalled" if client.transfer.flow.paused else \
                f"{client.transfer.flow.rate / 1e6:.2f} MB/s"
            print(f"t={sim.now - t0:5.0f}s  client file: "
                  f"{size / 1e6:6.1f} MB ({state})")
        if not download.done.fired:
            sim.schedule(30.0, report)
    sim.schedule(30.0, report)

    sim.run(until=t0 + 4000.0)
    xfer = download.done.value
    assert xfer is not None and xfer.completed, "transfer must survive"
    pre = client.transfer.mean_rate(t0, t0 + 55.0) / 1e6
    end = client.transfer.flow.finish_time
    record = server_vm.migrations[-1]
    post = client.transfer.mean_rate(record.resumed_at + 10.0, end) / 1e6
    print(f"\ntransfer completed at t={end - t0:.0f}s with zero application "
          f"restarts")
    print(f"rate before migration (UFL→NWU WAN): {pre:.2f} MB/s")
    print(f"rate after migration (NWU LAN):      {post:.2f} MB/s")
    print("(paper Fig. 6: 1.36 MB/s → 1.83 MB/s across a 720 MB transfer)")


if __name__ == "__main__":
    main()
