"""Global sorted ring index: every live address in one bisect array.

The per-simulation counterpart of the per-node ring view in
:class:`~repro.brunet.table.ConnectionTable`: a sorted array of 160-bit
addresses (plain ints) with a parallel payload array, maintained
incrementally as nodes join and leave.  Census paths (`stats.survey`,
`Deployment.ring_consistent`), invariant sweeps and the scaling
experiments ask it for true successors/predecessors in O(log n) instead
of re-sorting the node registry per query.

Insertion keeps the arrays sorted with ``list.insert`` — O(n) element
moves, but a single C-level memmove; across a 10k-node bring-up that is
milliseconds, against the former O(n log n) sort *per census call*.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Iterator, Optional

from repro.brunet.address import (nearest_index, predecessor_index,
                                  successor_index)


class RingIndex:
    """Sorted (addrs, items) parallel arrays keyed by ring address."""

    __slots__ = ("_addrs", "_items")

    def __init__(self) -> None:
        self._addrs: list[int] = []
        self._items: list[Any] = []

    @classmethod
    def from_nodes(cls, nodes: Iterable[Any]) -> "RingIndex":
        """Build from objects with an ``addr`` attribute (one sort)."""
        idx = cls()
        pairs = sorted((int(n.addr), n) for n in nodes)
        idx._addrs = [a for a, _ in pairs]
        idx._items = [n for _, n in pairs]
        return idx

    # -- mutation ----------------------------------------------------------
    def add(self, addr: int, item: Any) -> None:
        """Insert ``item`` at ``addr`` (replaces an existing entry)."""
        a = int(addr)
        i = bisect_left(self._addrs, a)
        if i < len(self._addrs) and self._addrs[i] == a:
            self._items[i] = item
            return
        self._addrs.insert(i, a)
        self._items.insert(i, item)

    def discard(self, addr: int, item: Any = None) -> bool:
        """Remove the entry at ``addr``.  When ``item`` is given the entry
        is only removed if it still holds that exact payload (mirrors the
        guarded ``Deployment.unregister_node`` semantics).  Returns True
        when an entry was removed."""
        a = int(addr)
        i = bisect_left(self._addrs, a)
        if i >= len(self._addrs) or self._addrs[i] != a:
            return False
        if item is not None and self._items[i] is not item:
            return False
        del self._addrs[i]
        del self._items[i]
        return True

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._addrs)

    def __contains__(self, addr: int) -> bool:
        a = int(addr)
        i = bisect_left(self._addrs, a)
        return i < len(self._addrs) and self._addrs[i] == a

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    @property
    def addrs(self) -> list[int]:
        """The sorted address array itself (do not mutate)."""
        return self._addrs

    @property
    def items(self) -> list[Any]:
        """Payloads in address order (do not mutate)."""
        return self._items

    def get(self, addr: int) -> Optional[Any]:
        a = int(addr)
        i = bisect_left(self._addrs, a)
        if i < len(self._addrs) and self._addrs[i] == a:
            return self._items[i]
        return None

    def rank(self, addr: int) -> int:
        """Number of indexed addresses strictly below ``addr``."""
        return bisect_left(self._addrs, int(addr))

    def successor(self, addr: int) -> Optional[Any]:
        """Payload of the first address clockwise *after* ``addr``
        (exclusive — the true ring successor of a member address)."""
        n = len(self._addrs)
        if n == 0:
            return None
        a = int(addr)
        i = successor_index(self._addrs, a)
        if self._addrs[i] == a:
            i = (i + 1) % n
        return self._items[i]

    def predecessor(self, addr: int) -> Optional[Any]:
        """Payload of the nearest address counter-clockwise of ``addr``
        (exclusive)."""
        if not self._addrs:
            return None
        return self._items[predecessor_index(self._addrs, int(addr))]

    def nearest(self, addr: int) -> Optional[Any]:
        """Payload nearest to ``addr`` by ring distance (ties to the
        lower address, inclusive of ``addr`` itself)."""
        if not self._addrs:
            return None
        return self._items[nearest_index(self._addrs, int(addr))]

    def neighbors(self, addr: int, per_side: int = 1) -> list[Any]:
        """Up to ``per_side`` members on each side of ``addr``
        (exclusive), clockwise picks first — the global-index analogue of
        :meth:`ConnectionTable.neighbors_of`."""
        addrs = self._addrs
        n = len(addrs)
        if n == 0:
            return []
        a = int(addr)
        start = bisect_left(addrs, a)
        out: list[Any] = []
        seen: set[int] = set()
        i, taken, steps = start % n, 0, 0
        while taken < per_side and steps < n:
            if addrs[i] != a and addrs[i] not in seen:
                seen.add(addrs[i])
                out.append(self._items[i])
                taken += 1
            i = (i + 1) % n
            steps += 1
        i, taken, steps = (start - 1) % n, 0, 0
        while taken < per_side and steps < n:
            if addrs[i] != a and addrs[i] not in seen:
                seen.add(addrs[i])
                out.append(self._items[i])
                taken += 1
            i = (i - 1) % n
            steps += 1
        return out


__all__ = ["RingIndex"]
