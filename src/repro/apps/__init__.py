"""The paper's two life-science benchmark applications.

Each module provides (a) a *real, runnable* miniature of the algorithm —
an EM motif finder for MEME [11], a Felsenstein-pruning maximum-likelihood
stepwise-addition search for fastDNAml [41,48] — used by the examples and
tested directly, and (b) the calibrated cost model the simulation uses to
generate Fig. 8 / Table III workloads at the paper's scale.
"""

from repro.apps.sequences import random_dna, implant_motif
from repro.apps.meme import MemeMotifFinder, MemeWorkload
from repro.apps.fastdnaml import (
    FastDnaMl,
    FastDnamlWorkload,
    jc69_likelihood,
)

__all__ = [
    "random_dna",
    "implant_motif",
    "MemeMotifFinder",
    "MemeWorkload",
    "FastDnaMl",
    "FastDnamlWorkload",
    "jc69_likelihood",
]
