"""10k-node ring scaling on the sharded kernel.

The paper's scalability argument (§I, §IV-A) is asymptotic: greedy routing
over k Kleinberg far links costs O((1/k)·log²n) expected hops.  The
existing :mod:`repro.experiments.scaling` sweep verifies the shape up to a
few hundred nodes through the full join protocol; this experiment takes
the simulator to 10,000 nodes, where joining one-at-a-time is no longer
the interesting cost.  Methodology:

* **Warm-started formation** — the structured ring (near neighbours plus k
  Kleinberg-sampled far links, resolved to their nearest live node) is
  constructed directly from the sorted address array, exactly the state
  the join protocol converges to.  Every node then *starts for real*:
  keep-alive sweeps, overlord maintenance and periodic re-announces run
  the genuine protocol over the constructed state for ``settle`` seconds,
  so a mis-wired ring would be repaired — or flagged by the audit.
* **Sharded kernel** — nodes are partitioned into contiguous address
  regions on a :class:`~repro.sim.shards.ShardedKernel`; batched timers
  (``BrunetConfig.batch_timers``) keep per-node keep-alives from
  dominating the event queues.
* **Measurement** — mean greedy hop count over sampled pairs at each n,
  a least-squares fit of ``hops = c·log²n``, an optional churn slice
  (crash a fraction, time ring recovery), and a budgeted post-hoc
  :mod:`repro.check` audit.

Run ``python -m repro.experiments.scaling_10k --help`` for the CLI; CI
runs the 1k-point smoke (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.brunet import BrunetConfig, BrunetNode
from repro.brunet.address import (
    ADDRESS_SPACE,
    BrunetAddress,
    kleinberg_far_target,
    nearest_index,
    random_address,
)
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.routing import overlay_hop_count, trace_route
from repro.check import invariants
from repro.experiments.common import print_table
from repro.phys import Endpoint, Internet, Site
from repro.sim.shards import ShardedKernel

#: minimum public sites the overlay is spread over (round-robin), so
#: maintenance and repair traffic crosses WAN latencies; grows with n
#: because one site's /24 holds at most ~250 hosts
MIN_SITES = 4
SITE_CAPACITY = 250


@dataclass
class ChurnSlice:
    """Outcome of the crash-and-recover slice at one scale point."""

    n_killed: int
    #: seconds from the crash until survivor ring consistency (None = never)
    recovery_ring: Optional[float]
    #: routable fraction over sampled survivor pairs at the horizon
    routable_end: float
    horizon: float


@dataclass
class Scale10kPoint:
    """One (n, shards) measurement."""

    n_nodes: int
    shards: int
    mean_hops: float
    p95_hops: float
    unreachable: int
    sample_pairs: int
    events: int
    cross_shard: int
    rounds: int
    wall_s: float
    churn: Optional[ChurnSlice] = None
    violations: list = field(default_factory=list)

    @property
    def hops_per_log2n_sq(self) -> float:
        return self.mean_hops / (math.log2(self.n_nodes) ** 2)


def fit_k(points: list[Scale10kPoint]) -> float:
    """Least-squares ``c`` through the origin for ``hops = c·log²n``."""
    num = sum(p.mean_hops * math.log2(p.n_nodes) ** 2 for p in points
              if math.isfinite(p.mean_hops))
    den = sum(math.log2(p.n_nodes) ** 4 for p in points
              if math.isfinite(p.mean_hops))
    return num / den if den else float("nan")


# ---------------------------------------------------------------------------
# warm-started formation
# ---------------------------------------------------------------------------
def _wire(a: BrunetNode, b: BrunetNode, conn_type: ConnectionType,
          now: float) -> None:
    """Install one overlay link, both directions (merging labels if the
    physical link already exists)."""
    a.table.add(Connection(b.addr, Endpoint(b.host.ip, b.port),
                           conn_type, now))
    b.table.add(Connection(a.addr, Endpoint(a.host.ip, a.port),
                           conn_type, now))


def build_warm_overlay(kernel: ShardedKernel, n: int, config: BrunetConfig,
                       k_far: int = 4) -> tuple[Internet, list[BrunetNode]]:
    """``n`` nodes with the converged structured topology pre-installed.

    Returns (internet, nodes sorted by ring address).  Node starts are
    scheduled at t=0 on each node's owning shard, so every node's timers
    and handlers live on the shard that owns its address region.
    """
    internet = Internet(kernel)
    kernel.attach(internet)
    n_sites = max(MIN_SITES, -(-n // SITE_CAPACITY))
    sites = [Site(internet, f"pub{i}") for i in range(n_sites)]
    arng = kernel.rng.stream("scaling10k.addrs")
    uniq: set[int] = set()
    while len(uniq) < n:
        uniq.add(int(random_address(arng)))
    addrs = sorted(uniq)
    nodes: list[BrunetNode] = []
    for i, a in enumerate(addrs):
        host = sites[i % n_sites].add_host(f"s{i}")
        kernel.register_host(host, a)
        nodes.append(BrunetNode(kernel, host, BrunetAddress(a), config,
                                name=f"s{i}"))
    now = kernel.now
    # the sorted-address ring: near links to both true neighbours
    for i, node in enumerate(nodes):
        _wire(node, nodes[(i + 1) % n], ConnectionType.STRUCTURED_NEAR, now)
    # k far links per node at Kleinberg distances, resolved greedily to
    # the nearest live address — the state FarConnectionOverlord converges
    # to; any shortfall (duplicate targets) is topped up by the overlord
    # itself during the settle phase
    frng = kernel.rng.stream("scaling10k.far")
    for i, node in enumerate(nodes):
        spacing = max(2, (addrs[(i + 1) % n] - addrs[i]) % ADDRESS_SPACE)
        made = tries = 0
        while made < k_far and tries < 8 * k_far:
            tries += 1
            target = kleinberg_far_target(addrs[i], frng,
                                          min_distance=spacing)
            peer = nodes[nearest_index(addrs, int(target))]
            if peer is node or node.table.get(peer.addr) is not None:
                continue
            _wire(node, peer, ConnectionType.STRUCTURED_FAR, now)
            made += 1
    for node in nodes:
        shard = kernel.shard(kernel.shard_index(int(node.addr)))
        shard.schedule_at(now, node.start, [])
    return internet, nodes


# ---------------------------------------------------------------------------
# measurement helpers
# ---------------------------------------------------------------------------
def _sample_hops(nodes: list[BrunetNode], sample_pairs: int,
                 rng: np.random.Generator) -> tuple[list[int], int]:
    live = [n for n in nodes if n.active]
    registry = {n.addr: n for n in live}
    hops: list[int] = []
    unreachable = 0
    for _ in range(sample_pairs):
        a, b = rng.choice(len(live), size=2, replace=False)
        h = overlay_hop_count(live[int(a)], live[int(b)].addr, registry.get)
        if h is None:
            unreachable += 1
        else:
            hops.append(h)
    return hops, unreachable


def _ring_consistent(live: list[BrunetNode]) -> bool:
    ordered = sorted(live, key=lambda n: int(n.addr))
    return all(
        ordered[i].table.get(ordered[(i + 1) % len(ordered)].addr) is not None
        for i in range(len(ordered)))


def _routable_fraction(live: list[BrunetNode], sample_pairs: int,
                       rng: np.random.Generator) -> float:
    registry = {n.addr: n for n in live}
    ok = total = 0
    for _ in range(sample_pairs):
        a, b = rng.choice(len(live), size=2, replace=False)
        total += 1
        if trace_route(live[int(a)], live[int(b)].addr,
                       registry.get) is not None:
            ok += 1
    return ok / total if total else 1.0


def _crash(node: BrunetNode) -> None:
    """True crash: no close-notify, the host stops answering entirely."""
    node.stop()
    node.host.shutdown()


def _churn_slice(kernel: ShardedKernel, nodes: list[BrunetNode],
                 kill_fraction: float, horizon: float,
                 sample_every: float, sample_pairs: int) -> ChurnSlice:
    n = len(nodes)
    n_killed = max(1, round(n * kill_fraction))
    vrng = kernel.rng.stream("scaling10k.victims")
    victims = sorted(int(i) for i in
                     vrng.choice(n, size=n_killed, replace=False))
    victim_set = set(victims)
    t_kill = kernel.now + 1.0
    for i in victims:
        node = nodes[i]
        # crash on the victim's own shard so the event lands in its
        # region's timeline, like any other local event
        kernel.shard(kernel.shard_index(int(node.addr))).schedule_at(
            t_kill, _crash, node)
    survivors = [nodes[i] for i in range(n) if i not in victim_set]
    kernel.run(until=t_kill)
    prng = kernel.rng.stream("scaling10k.recovery")
    recovery_ring: Optional[float] = None
    frac = 0.0
    while kernel.now - t_kill < horizon:
        kernel.run(until=kernel.now + sample_every)
        elapsed = kernel.now - t_kill
        if recovery_ring is None and _ring_consistent(survivors):
            recovery_ring = elapsed
        frac = _routable_fraction(survivors, sample_pairs, prng)
        if recovery_ring is not None and frac == 1.0:
            break
    return ChurnSlice(n_killed=n_killed, recovery_ring=recovery_ring,
                      routable_end=frac, horizon=horizon)


# ---------------------------------------------------------------------------
# one scale point
# ---------------------------------------------------------------------------
def measure_point(n: int, seed: int = 0, shards: int = 8,
                  lookahead: float = 0.002, settle: float = 45.0,
                  sample_pairs: int = 600, k_far: int = 4,
                  churn_fraction: float = 0.0,
                  churn_horizon: float = 300.0,
                  audit: bool = True,
                  audit_budget: int = 200) -> Scale10kPoint:
    """Build, settle, and survey one ``n``-node overlay."""
    wall0 = time.perf_counter()
    kernel = ShardedKernel(seed=seed, shards=shards, lookahead=lookahead,
                           trace=False)
    nodes: list[BrunetNode] = []
    # aggregate metrics + O(sectors) ring rollup above the node-series
    # threshold; a 10k-node bundle must not carry 10k label series
    kernel.obs.scale_to(n, nodes_fn=lambda: [x for x in nodes if x.active])
    config = BrunetConfig(batch_timers=True)
    _internet, built = build_warm_overlay(kernel, n, config, k_far=k_far)
    nodes.extend(built)
    kernel.run(until=settle)

    hrng = kernel.rng.stream("scaling10k.pairs")
    hops, unreachable = _sample_hops(nodes, sample_pairs, hrng)
    churn = None
    if churn_fraction > 0.0:
        churn = _churn_slice(kernel, nodes, churn_fraction, churn_horizon,
                             sample_every=10.0,
                             sample_pairs=max(100, sample_pairs // 4))
    violations: list = []
    if audit:
        live = [x for x in nodes if x.active]
        now = kernel.now
        violations = (invariants.check_ring(live, now, budget=audit_budget)
                      + invariants.check_symmetry(live, now,
                                                  budget=audit_budget)
                      + invariants.check_routing(live, now,
                                                 budget=audit_budget)
                      + invariants.check_cache(live, now,
                                               budget=audit_budget))
    return Scale10kPoint(
        n_nodes=n, shards=shards,
        mean_hops=float(np.mean(hops)) if hops else float("nan"),
        p95_hops=float(np.percentile(hops, 95)) if hops else float("nan"),
        unreachable=unreachable, sample_pairs=sample_pairs,
        events=kernel.events_processed, cross_shard=kernel.cross_shard,
        rounds=kernel.rounds, wall_s=time.perf_counter() - wall0,
        churn=churn, violations=violations)


def run(sizes=(1000, 2000, 5000, 10000), seed: int = 0, shards: int = 8,
        lookahead: float = 0.002, settle: float = 45.0,
        sample_pairs: int = 600, churn_fraction: float = 0.01,
        churn_horizon: float = 300.0, audit: bool = True,
        audit_budget: int = 200) -> list[Scale10kPoint]:
    """The full sweep; the churn slice runs at the largest size only."""
    largest = max(sizes)
    return [measure_point(
        n, seed=seed, shards=shards, lookahead=lookahead, settle=settle,
        sample_pairs=sample_pairs,
        churn_fraction=churn_fraction if n == largest else 0.0,
        churn_horizon=churn_horizon, audit=audit,
        audit_budget=audit_budget) for n in sizes]


def report(points: list[Scale10kPoint]) -> None:
    print_table(
        "Ring scaling on the sharded kernel — greedy hops vs c·log²n",
        ["nodes", "shards", "mean hops", "p95", "hops/log²n",
         "unreachable", "events", "x-shard", "wall (s)"],
        [[p.n_nodes, p.shards, f"{p.mean_hops:.2f}", f"{p.p95_hops:.0f}",
          f"{p.hops_per_log2n_sq:.3f}", p.unreachable, p.events,
          p.cross_shard, f"{p.wall_s:.0f}"] for p in points])
    c = fit_k(points)
    print(f"\nleast-squares fit: hops ≈ {c:.4f}·log²n "
          f"(k_far=4 predicts O(log²n/4) ⇒ c·k ≈ {4 * c:.2f})")
    for p in points:
        if p.churn is not None:
            rec = ("never" if p.churn.recovery_ring is None
                   else f"{p.churn.recovery_ring:.0f} s")
            print(f"churn @ n={p.n_nodes}: killed {p.churn.n_killed}, "
                  f"ring consistent after {rec}, sampled routable "
                  f"{p.churn.routable_end * 100:.1f}% at horizon")
    total = sum(len(p.violations) for p in points)
    if total:
        print(f"[audit] FAILED: {total} invariant violation(s)")
        for p in points:
            for v in p.violations:
                print(f"[audit]   n={p.n_nodes} t={v.t:10.3f} "
                      f"{v.kind:28s} {v.node:16s} {v.detail}")
    else:
        print("[audit] clean (budgeted post-hoc sweep)")


def main(argv: Optional[list[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="10k-node ring scaling on the sharded kernel")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[1000, 2000, 5000, 10000])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--lookahead", type=float, default=0.002)
    parser.add_argument("--settle", type=float, default=45.0)
    parser.add_argument("--sample-pairs", type=int, default=600)
    parser.add_argument("--churn-fraction", type=float, default=0.01)
    parser.add_argument("--churn-horizon", type=float, default=300.0)
    parser.add_argument("--no-audit", action="store_true")
    parser.add_argument("--audit-budget", type=int, default=200)
    args = parser.parse_args(argv)
    points = run(sizes=tuple(args.sizes), seed=args.seed,
                 shards=args.shards, lookahead=args.lookahead,
                 settle=args.settle, sample_pairs=args.sample_pairs,
                 churn_fraction=args.churn_fraction,
                 churn_horizon=args.churn_horizon,
                 audit=not args.no_audit, audit_budget=args.audit_budget)
    report(points)
    return 1 if any(p.violations for p in points) else 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
