"""Discrete-event simulation kernel used by every WOW substrate.

The kernel is deliberately small and dependency-free: a binary-heap event
queue (:class:`~repro.sim.engine.Simulator`), generator-based processes
(:mod:`repro.sim.process`), condition variables (:class:`~repro.sim.process.Signal`),
deterministic named RNG streams (:mod:`repro.sim.rng`) and a tracing facility
(:mod:`repro.sim.trace`).

Time is a float in **seconds**; data sizes are **bytes**; bandwidth is
**bytes/second** throughout the code base (see :mod:`repro.sim.units`).
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.process import Process, Signal, Timeout, WaitSignal, AllOf
from repro.sim.rng import RngRegistry
from repro.sim.shards import ShardedKernel
from repro.sim.trace import Tracer, TimeSeries

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "ShardedKernel",
    "Process",
    "Signal",
    "Timeout",
    "WaitSignal",
    "AllOf",
    "RngRegistry",
    "Tracer",
    "TimeSeries",
]
