"""Sharded event kernel: conservative windowed round-robin over K shards.

A 10k-node ring pushes every keep-alive, overlord tick and routed packet
through one global event heap.  :class:`ShardedKernel` partitions the ring
into K contiguous address regions — ``shard_of(addr) = addr·K >> 160`` —
and gives each region its own :class:`~repro.sim.engine.Simulator` (its
own heap + timer wheel), while sharing a single RNG registry, tracer and
observability hub so a seed still pins the whole experiment.

Synchronisation is classic conservative PDES: time advances in windows of
``lookahead`` seconds.  Every shard runs its local queue up to the window
barrier before any shard may pass it; events a shard schedules for itself
are unconstrained, but an event crossing regions (a packet delivery whose
destination host lives on another shard) is clamped to arrive no earlier
than ``lookahead`` after it was sent and is carried through an inter-shard
mailbox, drained in deterministic ``(time, seq)`` order at the next window
boundary.  Because cross-shard arrivals always land strictly beyond the
current barrier, no shard ever receives an event in its past.

``shards=1`` (the default) degrades to a transparent facade over a single
:class:`Simulator` — every call delegates, no window logic runs, and
same-seed trajectories are byte-identical to the plain kernel.  With
``shards>1`` the delay clamp and the window quantisation perturb timing by
design, so results are reproducible per (seed, shards, lookahead) triple
but differ across shard counts; see DESIGN.md §16 for when that matters.

This is an in-process round-robin, not thread parallelism: the win is
K smaller heaps (shorter sift paths, better locality) and a mailbox seam
that a future multi-process runner can pick up — not a GIL miracle.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.engine import Event, SimulationError, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.host import Host
    from repro.phys.network import Internet
    from repro.phys.packet import Datagram

#: the 160-bit Brunet address space partitioned across shards
_ADDRESS_BITS = 160


class ShardedKernel:
    """Drop-in ``Simulator`` facade multiplexing K region shards.

    Nodes, transports and the internet hold *this* object as their
    ``sim``; scheduling calls made while a shard is executing land on
    that shard's queue at that shard's clock, so a node whose start
    event was placed on its owning shard keeps all of its self-timers
    there.  Setup code running outside any shard schedules on shard 0
    (use :meth:`shard` + :meth:`shard_index` to place work explicitly).
    """

    def __init__(self, seed: int = 0, shards: int = 1,
                 lookahead: float = 0.010, trace: bool = True,
                 trace_max_records: Optional[int] = None,
                 metrics: bool = True):
        if shards < 1:
            raise SimulationError("need at least one shard")
        if lookahead <= 0 or not math.isfinite(lookahead):
            raise SimulationError("lookahead must be positive and finite")
        base = Simulator(seed=seed, trace=trace,
                         trace_max_records=trace_max_records, metrics=metrics)
        self.shards: list[Simulator] = [base]
        for _ in range(shards - 1):
            s = Simulator(seed=seed, trace=False, metrics=False)
            # one seed, one tracer, one metrics hub for the whole kernel
            s.rng = base.rng
            s.tracer = base.tracer
            s.obs = base.obs
            self.shards.append(s)
        self.n_shards = shards
        self.lookahead = lookahead
        self._active: Optional[Simulator] = None
        self._host_shard: dict[int, int] = {}
        self._mail: list[list[tuple]] = [[] for _ in range(shards)]
        self._mail_seq = 0
        self._barrier = 0.0
        self._running = False
        self._stopped = False
        #: synchronisation windows executed (telemetry)
        self.rounds = 0
        #: deliveries that crossed a region boundary (telemetry)
        self.cross_shard = 0

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    def shard_index(self, addr: int) -> int:
        """The shard owning a 160-bit ring address (contiguous regions)."""
        return (int(addr) * self.n_shards) >> _ADDRESS_BITS

    def shard(self, index: int) -> Simulator:
        """The inner simulator for one region (for explicit placement)."""
        return self.shards[index]

    def register_host(self, host: "Host", addr: int) -> None:
        """Pin ``host`` to the shard owning ``addr`` (its node's ring
        address).  Deliveries to unregistered hosts stay on the sending
        shard — register every overlay host when ``shards > 1``."""
        self._host_shard[id(host)] = self.shard_index(addr)

    def attach(self, internet: "Internet") -> None:
        """Route the internet's delivery events through the kernel.

        Replaces the internet's ``_schedule_delivery`` seam so packets
        addressed to a host on another shard travel via the inter-shard
        mailbox with the lookahead clamp.  A no-op with one shard, which
        keeps the single-shard event stream byte-identical to a plain
        :class:`Simulator`.
        """
        if self.n_shards == 1:
            return
        internet._schedule_delivery = (  # type: ignore[method-assign]
            lambda delay, host, dgram:
                self._route_delivery(internet, delay, host, dgram))

    def _route_delivery(self, internet: "Internet", delay: float,
                        host: "Host", dgram: "Datagram") -> None:
        active = self._active or self.shards[0]
        dst = self._host_shard.get(id(host))
        if dst is None or self.shards[dst] is active:
            active.schedule(delay, internet._deliver, host, dgram)
            return
        self.cross_shard += 1
        la = self.lookahead
        t = active.now + (delay if delay > la else la)
        self._mail_seq += 1
        self._mail[dst].append(
            (t, self._mail_seq, internet._deliver, (host, dgram)))

    def _drain_mail(self) -> None:
        """Move mailbox entries onto their shards' queues in (time, seq)
        order.  Every entry's time lies strictly beyond the barrier all
        shards have reached, so the insertions are always in-future."""
        for idx, box in enumerate(self._mail):
            if not box:
                continue
            box.sort()  # (t, seq) — seq unique, fn/args never compared
            shard = self.shards[idx]
            for t, _seq, fn, args in box:
                shard.schedule_at(t, fn, *args)
            box.clear()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run all shards until drained or ``until``.  Windowed
        round-robin with ``shards > 1``; a straight delegate otherwise."""
        if self.n_shards == 1:
            return self.shards[0].run(until=until, max_events=max_events)
        if self._running:
            raise SimulationError("kernel is not reentrant")
        if max_events is not None:
            raise SimulationError(
                "max_events is not supported with shards > 1")
        self._running = True
        self._stopped = False
        la = self.lookahead
        barrier = self._barrier
        try:
            while not self._stopped:
                self._drain_mail()
                head = math.inf
                for s in self.shards:
                    ev = s._head()
                    if ev is not None and ev.time < head:
                        head = ev.time
                if math.isinf(head) or (until is not None and head > until):
                    if until is not None and until > barrier:
                        barrier = until
                    break
                nxt = barrier + la
                if head > nxt:
                    # idle-skip: jump straight to the window holding the
                    # next event anywhere in the system
                    nxt = la * math.ceil(head / la)
                    if nxt < head:  # float guard
                        nxt = head
                if until is not None and nxt > until:
                    nxt = until  # a narrower window is strictly safe
                for shard in self.shards:
                    self._active = shard
                    try:
                        shard.run(until=nxt)
                    finally:
                        self._active = None
                    if self._stopped:
                        break
                barrier = nxt
                self.rounds += 1
        finally:
            self._running = False
            for s in self.shards:
                if s.now < barrier:
                    s.now = barrier
            self._barrier = barrier
        return barrier

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True
        (self._active or self.shards[0]).stop()

    def step(self) -> bool:
        """Single-step (single-shard mode only — windowed execution has
        no meaningful global "next event" outside :meth:`run`)."""
        if self.n_shards != 1:
            raise SimulationError("step() requires shards == 1")
        return self.shards[0].step()

    # ------------------------------------------------------------------
    # Simulator facade
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The executing shard's clock, or the global barrier when idle."""
        return (self._active or self.shards[0]).now

    @property
    def executing(self) -> bool:
        return (self._active or self.shards[0]).executing

    @property
    def rng(self):
        return self.shards[0].rng

    @property
    def tracer(self):
        return self.shards[0].tracer

    @property
    def obs(self):
        return self.shards[0].obs

    @property
    def trace_on(self) -> bool:
        return self.shards[0].tracer.enabled

    def trace(self, category: str, **data: Any) -> None:
        self.tracer.record(self.now, category, data)

    @property
    def events_processed(self) -> int:
        return sum(s.events_processed for s in self.shards)

    @property
    def profiler(self):
        return self.shards[0].profiler

    @profiler.setter
    def profiler(self, prof) -> None:
        for s in self.shards:
            s.profiler = prof

    def pending(self) -> int:
        return (sum(s.pending() for s in self.shards)
                + sum(len(box) for box in self._mail))

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Schedule on the executing shard (shard 0 outside callbacks)."""
        return (self._active or self.shards[0]).schedule(
            delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Event:
        return (self._active or self.shards[0]).schedule_at(
            time, fn, *args, priority=priority)

    def shared(self, key: Any, factory: Callable[[Simulator], Any]) -> Any:
        """Per-*shard* service registry: a node asking for the shared
        sweep wheel gets its own shard's instance."""
        return (self._active or self.shards[0]).shared(key, factory)


__all__ = ["ShardedKernel"]
