"""Test TCP (ttcp) bandwidth measurement — the Table II tool.

"We used the Test TCP (ttcp) utility to measure the end-to-end bandwidth
achieved in transfers of large files" (§V-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ipop.transfer import OverlayTransfer
from repro.sim.process import WaitSignal
from repro.sim.units import to_KBps

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm


def ttcp_measure(src_vm: "WowVm", dst_vm: "WowVm", size: float,
                 name: str = "ttcp"):
    """Generator: one ttcp transfer of ``size`` bytes from ``src_vm`` to
    ``dst_vm``.  Returns measured goodput in the paper's KB/s."""
    calib = src_vm.deployment.calib
    xfer = OverlayTransfer(src_vm.deployment.broker, src_vm.addr,
                           dst_vm.addr, size / calib.ttcp_efficiency,
                           name=name)
    t0 = src_vm.sim.now
    yield WaitSignal(xfer.done)
    elapsed = src_vm.sim.now - t0
    return to_KBps(size / elapsed) if elapsed > 0 else 0.0
