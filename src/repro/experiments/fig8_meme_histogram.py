"""Figure 8: PBS/MEME wall-clock histograms, shortcuts enabled vs disabled.

4000 short MEME jobs submitted at 1 job/s to a PBS head node; 33 workers;
input/output staged over an NFS export on the head (§V-D1).  The paper
measures 24.1 s ± 6.5 (shortcuts) vs 32.2 s ± 9.7 (no shortcuts) per job,
and overall throughput 53 vs 22 jobs/minute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.meme import MemeWorkload
from repro.experiments.common import (
    ExperimentSetup,
    make_testbed,
    print_table,
    run_until_signal,
)
from repro.middleware.nfs import NfsServer
from repro.middleware.pbs import PbsMom, PbsServer

#: the paper's histogram bins (wall-clock seconds, 8s-wide buckets)
HIST_BINS = np.arange(0.0, 104.1, 8.0)


@dataclass
class MemeRunResult:
    shortcuts: bool
    n_jobs: int
    completed: int
    wall_mean: float
    wall_std: float
    throughput_jpm: float
    histogram: np.ndarray
    bin_edges: np.ndarray
    total_wall_clock: float
    jobs_per_node: dict[str, int] = field(default_factory=dict)


def run_one(shortcuts: bool, seed: int = 0, scale: float = 1.0,
            n_jobs: int = 4000, submit_interval: float = 1.0,
            setup: ExperimentSetup | None = None) -> MemeRunResult:
    if setup is None:
        setup = make_testbed(seed=seed, scale=scale, shortcuts=shortcuts)
    sim, tb = setup.sim, setup.testbed
    calib = setup.calib

    head = tb.head
    nfs = NfsServer(head)
    nfs.export("meme.in", calib.meme_input_size)
    pbs = PbsServer(head)
    for worker in tb.workers():
        PbsMom(worker, head.virtual_ip)
        pbs.register_worker(worker.virtual_ip)
    workload = MemeWorkload(calib, sim.rng.stream("fig8.meme"))
    all_done = pbs.expect(n_jobs)
    t0 = sim.now
    for i, spec in enumerate(workload.jobs(n_jobs)):
        sim.schedule(i * submit_interval, pbs.qsub, spec)
    run_until_signal(sim, all_done,
                     n_jobs * submit_interval * 5.0 + 4000.0)

    done = [r for r in pbs.records if r.end_time is not None]
    walls = np.array([r.wall_time for r in done])
    hist, edges = np.histogram(walls, bins=HIST_BINS)
    per_node: dict[str, int] = {}
    for r in done:
        per_node[r.node_name] = per_node.get(r.node_name, 0) + 1
    total = (max(r.end_time for r in done) - t0) if done else 0.0
    return MemeRunResult(
        shortcuts=shortcuts, n_jobs=n_jobs, completed=len(done),
        wall_mean=float(walls.mean()) if walls.size else float("nan"),
        wall_std=float(walls.std()) if walls.size else float("nan"),
        throughput_jpm=60.0 * len(done) / total if total > 0 else 0.0,
        histogram=hist, bin_edges=edges, total_wall_clock=total,
        jobs_per_node=per_node)


def run(seed: int = 0, scale: float = 1.0, n_jobs: int = 4000
        ) -> dict[bool, MemeRunResult]:
    return {shortcuts: run_one(shortcuts, seed=seed, scale=scale,
                               n_jobs=n_jobs)
            for shortcuts in (True, False)}


def report(results: dict[bool, MemeRunResult],
           csv_dir: str | None = None) -> None:
    on, off = results[True], results[False]
    print_table(
        "Figure 8 — PBS/MEME wall-clock distribution",
        ["metric", "shortcuts enabled", "shortcuts disabled"],
        [["jobs completed", on.completed, off.completed],
         ["wall-clock mean (s)", f"{on.wall_mean:.1f}", f"{off.wall_mean:.1f}"],
         ["wall-clock std (s)", f"{on.wall_std:.1f}", f"{off.wall_std:.1f}"],
         ["throughput (jobs/min)", f"{on.throughput_jpm:.0f}",
          f"{off.throughput_jpm:.0f}"],
         ["total wall clock (s)", f"{on.total_wall_clock:.0f}",
          f"{off.total_wall_clock:.0f}"]])
    from repro.experiments.plotting import export_csv
    print()
    for label, r in (("shortcuts enabled", on), ("shortcuts disabled", off)):
        pct = 100.0 * r.histogram / max(1, r.completed)
        print(f"Fig. 8 ({label}): wall-clock histogram")
        peak = pct.max() or 1.0
        for p, lo, hi in zip(pct, r.bin_edges, r.bin_edges[1:]):
            bar = "█" * int(round(44 * p / peak))
            print(f"  {lo:3.0f}-{hi:<3.0f}s |{bar:<44} {p:4.1f}%")
        print()
    if csv_dir is not None:
        export_csv(f"{csv_dir}/fig8_histograms.csv",
                   ("mode", "bin_low_s", "bin_high_s", "fraction"),
                   [(("enabled" if r.shortcuts else "disabled"), lo, hi,
                     n / max(1, r.completed))
                    for r in (on, off)
                    for n, lo, hi in zip(r.histogram, r.bin_edges,
                                         r.bin_edges[1:])])


def main(seed: int = 0, scale: float = 0.5, n_jobs: int = 600
         ) -> dict[bool, MemeRunResult]:
    results = run(seed=seed, scale=scale, n_jobs=n_jobs)
    report(results)
    return results


if __name__ == "__main__":  # pragma: no cover
    main()
