"""Figure 7: PBS-scheduled MEME jobs across a worker VM migration.

A worker VM at UFL runs a stream of PBS/MEME jobs.  Background load is
injected on its host, inflating job runtimes; the VM is then migrated to an
unloaded NWU host.  The job in flight during the migration is stretched by
the WAN migration latency but completes successfully; subsequent jobs run
faster than on the loaded host — all with zero application reconfiguration
(§V-C2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    ExperimentSetup,
    make_testbed,
    print_table,
    run_until_signal,
)
from repro.middleware.nfs import NfsServer
from repro.middleware.pbs import PbsMom, PbsServer
from repro.apps.meme import MemeWorkload


@dataclass
class PbsMigrationResult:
    job_walls: list[float]  # wall time per job id, submission order
    migration_job_index: int
    pre_mean: float
    during_wall: float
    post_mean: float
    completed_all: bool
    outage: float


def run(seed: int = 0, scale: float = 1.0, jobs_before: int = 30,
        jobs_after: int = 25, load: float = 1.2,
        transfer_size: float | None = None,
        setup: ExperimentSetup | None = None) -> PbsMigrationResult:
    if setup is None:
        setup = make_testbed(seed=seed, scale=scale)
    sim, tb = setup.sim, setup.testbed
    dep = setup.deployment
    calib = setup.calib

    head = tb.head
    worker = tb.vm(3)  # single UFL worker runs every job
    nfs = NfsServer(head)
    nfs.export("meme.in", calib.meme_input_size)
    pbs = PbsServer(head)
    mom = PbsMom(worker, head.virtual_ip)
    pbs.register_worker(worker.virtual_ip)

    workload = MemeWorkload(calib, sim.rng.stream("fig7.meme"))
    total = jobs_before + 1 + jobs_after
    all_done = pbs.expect(total)

    # load the host from the start (the paper's use case: migrate *because*
    # the host is loaded)
    worker.host.load = load
    migration = {}

    def submit_next(i: int) -> None:
        if i >= total:
            return
        record = pbs.qsub(workload.job(i))
        if i == jobs_before:
            # trigger the migration mid-job, once this job is running
            def when_running() -> None:
                if record.status == "running":
                    sig = worker.migrate(dep.sites["nwu"],
                                         transfer_size=transfer_size,
                                         dest_cpu_speed=0.83)
                    sig.wait_callback(lambda rec: migration.update(rec=rec))
                else:
                    sim.schedule(2.0, when_running)
            sim.schedule(2.0, when_running)

    # keep exactly one job queued behind the running one
    def feeder(i: int = 0) -> None:
        if i < total:
            submit_next(i)
            sim.schedule(4.0, feeder, i + 1)
    feeder()

    run_until_signal(sim, all_done, 40000.0)
    records = sorted((r for r in pbs.records), key=lambda r: r.job_id)
    walls = [r.wall_time if r.wall_time is not None else float("nan")
             for r in records]
    pre = [w for w in walls[:jobs_before] if np.isfinite(w)]
    post = [w for w in walls[jobs_before + 1:] if np.isfinite(w)]
    rec = migration.get("rec")
    return PbsMigrationResult(
        job_walls=walls,
        migration_job_index=jobs_before,
        pre_mean=float(np.mean(pre)) if pre else float("nan"),
        during_wall=walls[jobs_before],
        post_mean=float(np.mean(post)) if post else float("nan"),
        completed_all=pbs.completed >= total,
        outage=rec.outage if rec else float("nan"))


def report(result: PbsMigrationResult) -> None:
    print_table(
        "Figure 7 — PBS/MEME job profile across worker migration",
        ["metric", "value"],
        [["jobs completed", result.completed_all],
         ["mean wall pre-migration, loaded UFL host (s)",
          f"{result.pre_mean:.1f}"],
         ["wall of in-flight job during migration (s)",
          f"{result.during_wall:.0f}"],
         ["mean wall post-migration, unloaded NWU host (s)",
          f"{result.post_mean:.1f}"],
         ["migration outage (s)", f"{result.outage:.0f}"]])


def main(seed: int = 0, scale: float = 0.5, jobs_before: int = 10,
         jobs_after: int = 8, transfer_size: float = 80e6
         ) -> PbsMigrationResult:
    result = run(seed=seed, scale=scale, jobs_before=jobs_before,
                 jobs_after=jobs_after, transfer_size=transfer_size)
    report(result)
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
