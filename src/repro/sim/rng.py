"""Deterministic named RNG streams.

Every stochastic component asks the registry for a stream by name
(``sim.rng.stream("phys.latency")``).  Stream seeds are derived from the
master seed and the name via ``numpy.random.SeedSequence``, so adding a new
consumer never perturbs existing streams — a property the calibration tests
rely on.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 keeps the derivation stable across Python hash seeds.
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=(tag,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str, index: int) -> np.random.Generator:
        """An independent stream for the ``index``-th entity of a family
        (e.g. per-trial streams): ``fork("join.trial", 7)``."""
        return self.stream(f"{name}[{index}]")

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)
