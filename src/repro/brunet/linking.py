"""The linking handshake (§IV-B) — and, implicitly, NAT hole punching.

An initiator works through the target's URI list one endpoint at a time,
resending unanswered link requests with exponential back-off; only after
``link_max_retries`` sends does it abandon a URI and move to the next.  With
the paper's conservative constants that is ~155 s per dead URI — exactly the
delay that shows up in Fig. 4's UFL-UFL curve, where the first (NAT-public)
URI is dead because the UFL NAT drops hairpin traffic.

Because *both* peers initiate linking after a CTM exchange, their link
requests punch holes in both NATs ("the bi-directionality of the
connection/linking protocols is what enables the NAT hole-punching technique
to succeed", §IV-D).  Simultaneous attempts race; the race is broken with a
link-error message.  Two resolution policies are provided:

* ``race_tiebreak_by_address=True`` (default): the higher address wins
  deterministically — converges in one exchange;
* ``False``: the paper's description — both sides may abort and restart
  with exponential back-off and jitter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.brunet.address import BrunetAddress
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.messages import (
    LinkError,
    LinkReply,
    LinkRequest,
)
from repro.brunet.uri import Uri
from repro.obs.spans import TraceRef
from repro.phys.endpoints import Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode

SuccessCb = Callable[[Connection], None]
FailCb = Callable[[], None]


class LinkAttempt:
    """State of one in-progress linking handshake (initiator side)."""

    __slots__ = ("token", "target_addr", "uris", "conn_type", "uri_index",
                 "sends_on_uri", "interval", "timer", "on_success", "on_fail",
                 "started_at", "race_aborts", "trace_id", "span")

    def __init__(self, token: int, target_addr: Optional[BrunetAddress],
                 uris: list[Uri], conn_type: ConnectionType, started_at: float,
                 base_interval: float):
        self.token = token
        self.target_addr = target_addr
        self.uris = uris
        self.conn_type = conn_type
        self.uri_index = 0
        self.sends_on_uri = 0
        self.interval = base_interval
        self.timer = None
        self.on_success: list[SuccessCb] = []
        self.on_fail: list[FailCb] = []
        self.started_at = started_at
        self.race_aborts = 0
        # causal-trace anchors (None unless the handshake is traced)
        self.trace_id: Optional[int] = None
        self.span = None

    @property
    def current_uri(self) -> Optional[Uri]:
        if self.uri_index < len(self.uris):
            return self.uris[self.uri_index]
        return None


class Linker:
    """Manages all link attempts of one node and handles link messages."""

    def __init__(self, node: "BrunetNode"):
        self.node = node
        self.by_token: dict[int, LinkAttempt] = {}
        self.by_addr: dict[BrunetAddress, LinkAttempt] = {}
        self.failures = 0
        self.successes = 0
        metrics = node.sim.obs.metrics
        self._m_attempts = metrics.counter("linking.attempts",
                                           node=node.name)
        self._m_successes = metrics.counter("linking.successes",
                                            node=node.name)
        self._m_failures = metrics.counter("linking.failures",
                                           node=node.name)
        self._m_duration = metrics.histogram("linking.duration_s",
                                             node=node.name)

    # -- public API --------------------------------------------------------
    def start(self, target_addr: Optional[BrunetAddress], uris: list[Uri],
              conn_type: ConnectionType,
              on_success: Optional[SuccessCb] = None,
              on_fail: Optional[FailCb] = None,
              trace: Optional[TraceRef] = None) -> Optional[LinkAttempt]:
        """Begin (or piggyback on) a linking attempt.

        Returns None when a connection already exists (``on_success`` is
        invoked immediately with it).
        """
        node = self.node
        if target_addr is not None:
            existing = node.table.get(target_addr)
            if existing is not None:
                if conn_type not in existing.types:
                    # link already up: just take on the extra role
                    existing = node.table.add(Connection(
                        target_addr, existing.remote_endpoint, conn_type,
                        node.sim.now))
                if on_success is not None:
                    on_success(existing)
                return None
            running = self.by_addr.get(target_addr)
            if running is not None:
                if on_success is not None:
                    running.on_success.append(on_success)
                if on_fail is not None:
                    running.on_fail.append(on_fail)
                return running
        if not uris:
            if on_fail is not None:
                on_fail()
            return None
        attempt = LinkAttempt(node.next_token(), target_addr, list(uris),
                              conn_type, node.sim.now,
                              node.config.link_resend_interval)
        self._m_attempts.inc()
        spans = node.sim.obs.spans
        if trace is not None and spans.enabled:
            # snapshot the ref *now* — it keeps re-parenting as the trace
            # continues elsewhere, while this attempt anchors here
            attempt.trace_id = trace.trace_id
            attempt.span = spans.start(
                "link.attempt", node=node.name, t=node.sim.now,
                trace_id=trace.trace_id, parent=trace.parent,
                target=str(target_addr), conn_type=conn_type.value,
                uris=len(uris))
        if on_success is not None:
            attempt.on_success.append(on_success)
        if on_fail is not None:
            attempt.on_fail.append(on_fail)
        self.by_token[attempt.token] = attempt
        if target_addr is not None:
            self.by_addr[target_addr] = attempt
        self._send_request(attempt)
        return attempt

    def snapshot(self) -> list[dict]:
        """JSON-ready view of every in-flight attempt — the control
        socket's ``links`` command reports these beside the established
        connections, so an operator can tell "repair in progress" from
        "wedged" without attaching a debugger."""
        now = self.node.sim.now
        out = []
        for attempt in self.by_token.values():
            out.append({
                "token": attempt.token,
                "target": (attempt.target_addr.hex()
                           if attempt.target_addr is not None else None),
                "conn_type": attempt.conn_type.value,
                "uri": (str(attempt.current_uri)
                        if attempt.current_uri is not None else None),
                "uri_index": attempt.uri_index,
                "uris": len(attempt.uris),
                "sends_on_uri": attempt.sends_on_uri,
                "interval": attempt.interval,
                "elapsed": now - attempt.started_at,
                "race_aborts": attempt.race_aborts,
            })
        out.sort(key=lambda a: a["token"])
        return out

    def cancel_all(self) -> None:
        """Abort every in-flight attempt (node shutdown)."""
        for attempt in list(self.by_token.values()):
            self._deregister(attempt)
            # a traced attempt must not leave its span dangling open —
            # post-hoc span-tree reconstruction treats never-closed
            # non-root spans as leaks
            self._end_attempt_span(attempt, "cancelled")

    # -- send/retry machinery ------------------------------------------------
    def _send_request(self, attempt: LinkAttempt) -> None:
        uri = attempt.current_uri
        if uri is None:  # pragma: no cover - guarded by callers
            self._fail(attempt)
            return
        node = self.node
        msg = LinkRequest(attempt.token, node.addr,
                          node.uris.advertised(), attempt.conn_type.value)
        if attempt.span is not None:
            sid = node.sim.obs.spans.event(
                "link.send", node=node.name, t=node.sim.now,
                trace_id=attempt.trace_id, parent=attempt.span,
                uri=str(uri), send=attempt.sends_on_uri + 1,
                interval=attempt.interval)
            # the request datagram's transit span parents at this send
            msg.trace = TraceRef(attempt.trace_id, sid)
        node.send_direct(uri.endpoint, msg, node.config.size_link)
        attempt.sends_on_uri += 1
        attempt.timer = node.sim.schedule(attempt.interval,
                                          self._on_timeout, attempt)

    def _on_timeout(self, attempt: LinkAttempt) -> None:
        if attempt.token not in self.by_token or not self.node.active:
            return
        cfg = self.node.config
        if attempt.sends_on_uri >= cfg.link_max_retries:
            # give up on this URI, move to the next
            attempt.uri_index += 1
            attempt.sends_on_uri = 0
            attempt.interval = cfg.link_resend_interval
            if attempt.current_uri is None:
                self._fail(attempt)
                return
            if attempt.span is not None:
                self.node.sim.obs.spans.event(
                    "link.uri_advance", node=self.node.name,
                    t=self.node.sim.now, trace_id=attempt.trace_id,
                    parent=attempt.span, uri=str(attempt.current_uri))
            self.node.trace("link.uri_advance",
                            target=attempt.target_addr,
                            uri=str(attempt.current_uri))
        else:
            attempt.interval *= cfg.link_backoff_factor
        self._send_request(attempt)

    def _deregister(self, attempt: LinkAttempt) -> None:
        if attempt.timer is not None:
            attempt.timer.cancel()
            attempt.timer = None
        self.by_token.pop(attempt.token, None)
        if attempt.target_addr is not None and \
                self.by_addr.get(attempt.target_addr) is attempt:
            self.by_addr.pop(attempt.target_addr)

    def _fail(self, attempt: LinkAttempt) -> None:
        self._deregister(attempt)
        self.failures += 1
        self._m_failures.inc()
        elapsed = self.node.sim.now - attempt.started_at
        self._m_duration.observe(elapsed)
        self._end_attempt_span(attempt, "fail")
        self.node.trace("link.fail", target=attempt.target_addr,
                        elapsed=elapsed)
        for cb in attempt.on_fail:
            cb()

    def _complete(self, attempt: LinkAttempt, conn: Connection) -> None:
        self._deregister(attempt)
        self.successes += 1
        self._m_successes.inc()
        elapsed = self.node.sim.now - attempt.started_at
        self._m_duration.observe(elapsed)
        self._end_attempt_span(attempt, "ok")
        self.node.trace("link.success", target=conn.peer_addr,
                        elapsed=elapsed,
                        conn_type=conn.conn_type.value)
        for cb in attempt.on_success:
            cb(conn)

    def _end_attempt_span(self, attempt: LinkAttempt, status: str) -> None:
        if attempt.span is None:
            return
        spans = self.node.sim.obs.spans
        spans.end(attempt.span, self.node.sim.now, status=status)
        # extend the owning trace's reconstruction window: a ctm.handshake
        # trace is "done" when its slowest link attempt settles
        spans.end_trace(attempt.trace_id, self.node.sim.now)
        attempt.span = None

    # -- message handlers -----------------------------------------------------
    def handle_request(self, msg: LinkRequest, src: Endpoint) -> None:
        """Target side: accept, re-ack, or race-reject a link request."""
        node = self.node
        sender = msg.sender_addr
        if sender == node.addr:
            return  # self-link is meaningless
        conn_type = ConnectionType(msg.conn_type)
        existing = node.table.get(sender)
        callbacks: tuple[list, list] = ([], [])
        if existing is None:
            racing = self.by_addr.get(sender)
            if racing is not None:
                if self._race_keep_mine(sender):
                    reply = LinkError(msg.token, node.addr)
                    node.send_direct(src, reply, node.config.size_link)
                    # the peer's request proves a return path exists (its
                    # NAT hole is punched): retry right away at the observed
                    # endpoint instead of waiting out the back-off timer
                    observed = Uri("udp", src)
                    if racing.current_uri != observed:
                        racing.uris.insert(racing.uri_index, observed)
                        racing.sends_on_uri = 0
                    if racing.timer is not None:
                        racing.timer.cancel()
                    racing.interval = node.config.link_resend_interval
                    self._send_request(racing)
                    return
                # yield: abandon my attempt, accept theirs; my attempt's
                # callbacks fire when the connection lands below.
                callbacks = (racing.on_success, racing.on_fail)
                self._deregister(racing)
        conn = node.table.add(Connection(sender, src, conn_type,
                                         node.sim.now))
        for cb in callbacks[0]:
            cb(conn)
        reply = LinkReply(msg.token, node.addr, node.uris.advertised(),
                          Uri("udp", src), conn_type.value)
        node.send_direct(src, reply, node.config.size_link)
        # remember the peer's freshest URI list for repairs
        node.peer_uris[sender] = list(msg.sender_uris)

    def handle_reply(self, msg: LinkReply, src: Endpoint) -> None:
        """Initiator side: record the connection and learn observed URIs."""
        node = self.node
        if node.uris.learn(msg.observed_uri):
            node.trace("uri.learned", uri=str(msg.observed_uri))
        attempt = self.by_token.get(msg.token)
        if attempt is None and msg.sender_addr in self.by_addr:
            attempt = self.by_addr[msg.sender_addr]
        conn_type = (attempt.conn_type if attempt is not None
                     else ConnectionType(msg.conn_type))
        conn = node.table.add(Connection(msg.sender_addr, src, conn_type,
                                         node.sim.now))
        node.peer_uris[msg.sender_addr] = list(msg.sender_uris)
        if attempt is not None:
            self._complete(attempt, conn)

    def handle_error(self, msg: LinkError, src: Endpoint) -> None:
        """Race loss: abandon the attempt; re-check/retry later."""
        node = self.node
        attempt = self.by_addr.get(msg.sender_addr)
        if attempt is None:
            return
        attempt.race_aborts += 1
        callbacks = (list(attempt.on_success), list(attempt.on_fail))
        self._deregister(attempt)
        node.trace("link.race_abort", target=msg.sender_addr)
        if node.config.race_tiebreak_by_address:
            # the peer proceeds; re-check later in case its attempt dies
            delay = node.config.link_resend_interval * 4
        else:
            # paper behaviour: exponential back-off with jitter, then retry
            rng = node.sim.rng.stream(f"brunet.race.{node.name}")
            delay = (node.config.race_backoff_base
                     * (2 ** min(attempt.race_aborts, 6))
                     * float(rng.uniform(0.5, 1.5)))
        target = msg.sender_addr
        uris = attempt.uris

        def recheck() -> None:
            if not node.active:
                return
            # hand the saved callbacks to start(): it invokes them on every
            # terminal path, including "URI list now empty" (start returns
            # None there — extending callbacks on the returned attempt
            # would silently drop them and hang waiters forever)
            relay_ok = ((lambda conn: [cb(conn) for cb in callbacks[0]])
                        if callbacks[0] else None)
            relay_fail = ((lambda: [cb() for cb in callbacks[1]])
                          if callbacks[1] else None)
            again = self.start(target, node.peer_uris.get(target, uris),
                               attempt.conn_type,
                               on_success=relay_ok, on_fail=relay_fail)
            if again is not None:
                again.race_aborts = attempt.race_aborts

        node.sim.schedule(delay, recheck)

    def _race_keep_mine(self, peer: BrunetAddress) -> bool:
        """True when this node should keep its own attempt and reject the
        peer's (deterministic address tie-break)."""
        if self.node.config.race_tiebreak_by_address:
            return int(self.node.addr) > int(peer)
        return True  # paper mode: always tell the peer to give up
