"""Benchmark + regeneration of the join-latency CDF claim (reduced trials).

Paper (abstract): "in a set of 300 trials, 90% of the nodes self-configured
P2P routes within 10 seconds, and more than 99% established direct
connections to other nodes within 200 seconds."
"""

from benchmarks.conftest import run_once
from repro.experiments import join_latency_cdf


def test_join_latency_cdf(benchmark):
    result = run_once(benchmark, join_latency_cdf.run, seed=7, scale=0.3,
                      trials=12, window=240.0)
    join_latency_cdf.report(result)
    assert result.route_frac_within(10.0) >= 0.75
    assert result.direct_frac_within(200.0) >= 0.75
